//! Exact (exhaustive) optimizer for Problem 3 — the test oracle.
//!
//! Problem 3 is NP-hard (Lemma 2), so this module is exponential by nature
//! and guarded against large inputs. It exists to (a) verify the greedy
//! algorithm's `1 − 1/e` bound empirically, and (b) power the
//! greedy-vs-exact ablation (A2 in DESIGN.md).

use crate::{score_set, Rule, WeightFn};
use rustc_hash::FxHashSet;
use sdd_table::TableView;

/// Hard cap on `C(candidates, k)` before [`exact_best_rule_set`] refuses to
/// run — keeps accidental misuse from hanging a test suite.
pub const MAX_COMBINATIONS: u128 = 5_000_000;

/// Enumerates every rule with positive support on `view`, sizes `1..=max_size`.
pub fn enumerate_support_rules(view: &TableView<'_>, max_size: usize) -> Vec<Rule> {
    let table = view.table();
    let n_cols = table.n_columns();
    let mut out: FxHashSet<Rule> = FxHashSet::default();
    let col_subsets = subsets_up_to(n_cols, max_size.min(n_cols));
    for wr in view.iter() {
        for cols in &col_subsets {
            out.insert(Rule::from_row_columns(table, wr.row, cols));
        }
    }
    out.into_iter().collect()
}

fn subsets_up_to(n: usize, max_size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << n) {
        if (mask.count_ones() as usize) <= max_size {
            let cols: Vec<usize> = (0..n).filter(|&c| mask & (1 << c) != 0).collect();
            out.push(cols);
        }
    }
    out
}

/// Exhaustively finds the rule set of size ≤ `k` maximizing `Score`
/// (Definition 2). Returns `(best_set, best_score)`.
///
/// # Panics
/// If the number of candidate combinations exceeds [`MAX_COMBINATIONS`].
pub fn exact_best_rule_set(
    view: &TableView<'_>,
    weight: &dyn WeightFn,
    k: usize,
    max_size: usize,
) -> (Vec<Rule>, f64) {
    let candidates = enumerate_support_rules(view, max_size);
    let n = candidates.len();
    let combos = n_choose_k(n as u128, k as u128);
    assert!(
        combos <= MAX_COMBINATIONS,
        "exact search over C({n},{k}) = {combos} combinations exceeds the safety cap"
    );

    let mut best: (Vec<Rule>, f64) = (Vec::new(), 0.0);
    let mut indices: Vec<usize> = (0..k.min(n)).collect();
    if indices.is_empty() {
        return best;
    }
    loop {
        let set: Vec<Rule> = indices.iter().map(|&i| candidates[i].clone()).collect();
        let s = score_set(view, weight, &set);
        if s.total > best.1 {
            best = (set, s.total);
        }
        // Next combination (lexicographic).
        let klen = indices.len();
        let mut i = klen;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if indices[i] != i + n - klen {
                break;
            }
        }
        indices[i] += 1;
        for j in i + 1..klen {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

fn n_choose_k(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
        if result > MAX_COMBINATIONS * 2 {
            return result; // early out; caller only compares against the cap
        }
    }
    result
}

/// The greedy guarantee for `k` picks: `1 − ((k−1)/k)^k` (paper §3.4).
pub fn greedy_guarantee(k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let kf = k as f64;
    1.0 - ((kf - 1.0) / kf).powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Brs, SizeWeight};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use sdd_table::{Schema, Table};

    fn random_table(rng: &mut StdRng, n_rows: usize) -> Table {
        let rows: Vec<[String; 3]> = (0..n_rows)
            .map(|_| {
                [
                    format!("a{}", rng.gen_range(0..3)),
                    format!("b{}", rng.gen_range(0..3)),
                    format!("c{}", rng.gen_range(0..2)),
                ]
            })
            .collect();
        Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &rows).unwrap()
    }

    #[test]
    fn enumerate_support_rules_finds_all_patterns() {
        let table = Table::from_rows(
            Schema::new(["A", "B"]).unwrap(),
            &[&["a", "x"], &["b", "y"]],
        )
        .unwrap();
        let view = table.view();
        let rules = enumerate_support_rules(&view, 2);
        // Per row: (a,?),(?,x),(a,x) → 3 each, distinct across rows → 6.
        assert_eq!(rules.len(), 6);
    }

    #[test]
    fn exact_beats_or_matches_greedy() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let table = random_table(&mut rng, 25);
            let view = table.view();
            let greedy = Brs::new(&SizeWeight).run(&view, 2);
            let (_, exact) = exact_best_rule_set(&view, &SizeWeight, 2, 3);
            assert!(exact + 1e-9 >= greedy.total_score);
        }
    }

    #[test]
    fn greedy_respects_its_approximation_guarantee() {
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..15 {
            let table = random_table(&mut rng, 30);
            let view = table.view();
            let k = 2 + (trial % 2);
            let greedy = Brs::new(&SizeWeight).run(&view, k);
            let (_, exact) = exact_best_rule_set(&view, &SizeWeight, k, 3);
            let bound = greedy_guarantee(k) * exact;
            assert!(
                greedy.total_score + 1e-9 >= bound,
                "trial {trial}: greedy {} < guarantee {} (exact {})",
                greedy.total_score,
                bound,
                exact
            );
        }
    }

    #[test]
    fn greedy_guarantee_values() {
        assert!((greedy_guarantee(1) - 1.0).abs() < 1e-12);
        assert!((greedy_guarantee(2) - 0.75).abs() < 1e-12);
        // limit is 1 - 1/e ≈ 0.632...
        assert!(greedy_guarantee(50) > 0.632);
    }

    #[test]
    #[should_panic(expected = "safety cap")]
    fn refuses_huge_instances() {
        let mut rng = StdRng::seed_from_u64(17);
        let table = random_table(&mut rng, 500);
        let view = table.view();
        // Plenty of candidates; choose k large enough to blow the cap.
        let _ = exact_best_rule_set(&view, &SizeWeight, 12, 3);
    }

    #[test]
    fn k_zero_scores_zero() {
        let mut rng = StdRng::seed_from_u64(19);
        let table = random_table(&mut rng, 10);
        let (set, score) = exact_best_rule_set(&table.view(), &SizeWeight, 0, 3);
        assert!(set.is_empty());
        assert_eq!(score, 0.0);
    }
}
