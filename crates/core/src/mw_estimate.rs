//! Estimating the `mw` parameter by sampling (paper §6.1).
//!
//! "We create a small random sample of tuples from the table, and run the
//! BRS algorithm on it. Then the maximum weight `x` of the output on the
//! sample is likely to equal the maximum weight of the actual output. To
//! account for sampling error, we can set `mw` to `2x`."

use crate::{Brs, WeightFn};
use rand::seq::index::sample as index_sample;
use rand::{rngs::StdRng, SeedableRng};
use sdd_table::TableView;

/// Estimates a safe `mw` for expanding `view` with `weight` and `k` rules.
///
/// Runs BRS exactly (with `mw` = maximum possible weight) on a uniform
/// sample of `sample_size` view entries and returns **twice** the maximum
/// output weight. Falls back to the weight function's maximum possible
/// weight when the sample yields no rules.
pub fn estimate_mw(
    view: &TableView<'_>,
    weight: &dyn WeightFn,
    k: usize,
    sample_size: usize,
    seed: u64,
) -> f64 {
    let table = view.table();
    let fallback = weight.max_weight(table);
    if view.is_empty() || sample_size == 0 {
        return fallback;
    }

    let sample_view = if sample_size >= view.len() {
        view.clone()
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        let picks = index_sample(&mut rng, view.len(), sample_size);
        let mut rows = Vec::with_capacity(sample_size);
        let mut weights = Vec::with_capacity(sample_size);
        for i in picks {
            rows.push(view.row_at(i));
            weights.push(view.weight_at(i));
        }
        TableView::with_rows_and_weights(table, rows, weights)
    };

    let result = Brs::new(weight).run(&sample_view, k);
    let max_out = result.rules.iter().map(|s| s.weight).fold(0.0f64, f64::max);
    if max_out <= 0.0 {
        fallback
    } else {
        (2.0 * max_out).min(fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Brs, SizeWeight};
    use sdd_table::{Schema, Table};

    fn skewed_table() -> Table {
        // Strong pairs so optimal rules have size 2 (weight 2 under Size).
        let mut rows: Vec<[&str; 3]> = Vec::new();
        rows.extend(std::iter::repeat_n(["a", "x", "p"], 50));
        rows.extend(std::iter::repeat_n(["b", "y", "q"], 30));
        rows.extend(std::iter::repeat_n(["c", "z", "r"], 20));
        Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &rows).unwrap()
    }

    #[test]
    fn estimate_covers_the_true_max_weight() {
        let table = skewed_table();
        let view = table.view();
        let exact = Brs::new(&SizeWeight).run(&view, 3);
        let true_max = exact.rules.iter().map(|s| s.weight).fold(0.0f64, f64::max);
        let est = estimate_mw(&view, &SizeWeight, 3, 40, 42);
        assert!(
            est >= true_max,
            "estimate {est} below true max weight {true_max}"
        );
    }

    #[test]
    fn estimate_is_capped_by_max_possible_weight() {
        let table = skewed_table();
        let est = estimate_mw(&table.view(), &SizeWeight, 3, 40, 42);
        assert!(est <= SizeWeight.max_weight(&table));
    }

    #[test]
    fn empty_view_falls_back() {
        let table = skewed_table();
        let empty = table.view().filter(|_| false);
        let est = estimate_mw(&empty, &SizeWeight, 3, 10, 1);
        assert_eq!(est, 3.0);
    }

    #[test]
    fn oversized_sample_uses_whole_view() {
        let table = skewed_table();
        let est = estimate_mw(&table.view(), &SizeWeight, 3, 10_000, 7);
        assert!(est > 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let table = skewed_table();
        let a = estimate_mw(&table.view(), &SizeWeight, 3, 30, 5);
        let b = estimate_mw(&table.view(), &SizeWeight, 3, 30, 5);
        assert_eq!(a, b);
    }
}
