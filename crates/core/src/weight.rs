//! Weighting functions `W` (paper §2.2 and §6.1).
//!
//! A weighting function scores how *descriptive* a rule is, independent of
//! how many tuples it covers. The optimizer accepts any implementation of
//! [`WeightFn`] subject to the paper's two conditions:
//!
//! * **non-negativity** — `W(r) ≥ 0` for every rule,
//! * **monotonicity** — if `r1` is a sub-rule of `r2` then `W(r1) ≤ W(r2)`.
//!
//! Shipped implementations: [`SizeWeight`], [`BitsWeight`], [`SizeMinusOne`],
//! the parametric family [`ColumnWeight`] (`W(r) = (Σ_c o_{r,c}·w_c)^k`,
//! §6.1), and [`TraditionalEmulation`] which reduces smart drill-down to a
//! regular drill-down on one column (§5.1.2).

use crate::Rule;
use sdd_table::Table;

/// A monotonic, non-negative rule weighting function.
///
/// The weight may inspect the rule's star pattern, the schema, and per-column
/// cardinalities. It **should not** depend on the specific tuples of the
/// table (the paper's contract); value-dependent weights still work with the
/// optimizer (the NP-hardness reduction uses one) but then
/// [`WeightFn::max_weight`] must be overridden.
///
/// `Send + Sync` are required so the columnar counting kernel
/// ([`crate::kernel`]) can evaluate candidate weights from its worker
/// threads; weight functions are immutable config objects in practice.
pub trait WeightFn: Send + Sync {
    /// The weight `W(rule)`.
    fn weight(&self, rule: &Rule, table: &Table) -> f64;

    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// The maximum weight any rule can attain on `table`.
    ///
    /// Default: the weight of a fully-instantiated pattern (correct for any
    /// monotone, pattern-only weight). Used as a safe default for the `mw`
    /// parameter of the BRS optimizer.
    fn max_weight(&self, table: &Table) -> f64 {
        let full = Rule::from_codes(vec![0u32; table.n_columns()]);
        self.weight(&full, table)
    }

    /// A stable identity tag for shared result caches
    /// ([`crate::cachekey`]), or `None` (the default) to mark the weight
    /// **uncacheable** — results computed with it are never stored or
    /// served from a cache.
    ///
    /// Two weight functions returning the same tag must compute
    /// bit-identical weights for every `(rule, table)`; include every
    /// parameter that influences the weight in the tag.
    fn cache_tag(&self) -> Option<String> {
        None
    }
}

/// `W(r) = Size(r)`: the number of instantiated columns (paper §2.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct SizeWeight;

impl WeightFn for SizeWeight {
    fn weight(&self, rule: &Rule, _table: &Table) -> f64 {
        rule.size() as f64
    }

    fn name(&self) -> &str {
        "Size"
    }

    fn cache_tag(&self) -> Option<String> {
        Some("size".to_owned())
    }
}

/// `W(r) = Σ_{c instantiated} ⌈log2 |c|⌉` (paper §2.2).
///
/// Weighs columns by inherent complexity: instantiating a high-cardinality
/// column conveys more bits of information. Binary columns (like Gender)
/// contribute only 1; constant columns contribute 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitsWeight;

impl WeightFn for BitsWeight {
    fn weight(&self, rule: &Rule, table: &Table) -> f64 {
        rule.instantiated_columns()
            .map(|c| {
                let card = table.cardinality(c).max(1) as f64;
                card.log2().ceil()
            })
            .sum()
    }

    fn name(&self) -> &str {
        "Bits"
    }

    fn cache_tag(&self) -> Option<String> {
        Some("bits".to_owned())
    }
}

/// `W(r) = max(0, Size(r) − 1)` (paper §5.1.2, Figure 7).
///
/// Gives zero weight to single-column rules, forcing the optimizer to
/// surface rules with at least two instantiated values. (The paper prints
/// `Min(0, Size(r) − 1)`, an obvious typo for `Max` — a negative weight
/// would violate the paper's own non-negativity condition.)
#[derive(Debug, Clone, Copy, Default)]
pub struct SizeMinusOne;

impl WeightFn for SizeMinusOne {
    fn weight(&self, rule: &Rule, _table: &Table) -> f64 {
        rule.size().saturating_sub(1) as f64
    }

    fn name(&self) -> &str {
        "Size-1"
    }

    fn cache_tag(&self) -> Option<String> {
        Some("size-1".to_owned())
    }
}

/// The parametric family of §6.1: `W(r) = (Σ_c o_{r,c} · w_c)^k` with
/// per-column weights `w_c ≥ 0` and exponent `k ≥ 0`.
///
/// * `w_c = 1, k = 1` reproduces [`SizeWeight`];
/// * `w_c = ⌈log2 |c|⌉, k = 1` reproduces [`BitsWeight`];
/// * raising `k` steers the optimum toward larger rules (§6.1 shows the
///   optimal instantiated fraction grows with `k`);
/// * setting `w_c = 0` expresses indifference to column `c`, large `w_c`
///   expresses preference (§2.2 "a weight function can be used ... to
///   express a higher preference for a column").
#[derive(Debug, Clone)]
pub struct ColumnWeight {
    column_weights: Vec<f64>,
    exponent: f64,
    name: String,
}

impl ColumnWeight {
    /// Creates the family member with the given per-column weights and
    /// exponent. Panics if any `w_c < 0`, `k < 0`, or `w` is empty-length
    /// mismatched at call time (checked against the rule in `weight`).
    pub fn new(column_weights: Vec<f64>, exponent: f64) -> Self {
        assert!(
            column_weights.iter().all(|&w| w >= 0.0),
            "column weights must be non-negative"
        );
        assert!(exponent >= 0.0, "exponent must be non-negative");
        Self {
            name: format!("ColumnWeight(k={exponent})"),
            column_weights,
            exponent,
        }
    }

    /// Per-column weights matching [`BitsWeight`] but with exact (not
    /// ceiled) `log2`, as analyzed in §6.1 (`w_c ∝ ln f_c` under uniformity).
    pub fn bits_exact(table: &Table, exponent: f64) -> Self {
        let w = (0..table.n_columns())
            .map(|c| (table.cardinality(c).max(1) as f64).log2())
            .collect();
        Self::new(w, exponent)
    }
}

impl WeightFn for ColumnWeight {
    fn weight(&self, rule: &Rule, _table: &Table) -> f64 {
        let sum: f64 = rule
            .instantiated_columns()
            .map(|c| {
                *self
                    .column_weights
                    .get(c)
                    .expect("rule has more columns than ColumnWeight was configured for")
            })
            .sum();
        if self.exponent == 1.0 {
            sum
        } else {
            sum.powf(self.exponent)
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Emulates a **regular drill-down** on one column (paper §5.1.2):
/// `W(r) = 1` if `r` instantiates the target column, else `0`.
///
/// Run BRS with `k =` (number of distinct values in the column) and this
/// weight: each distinct value becomes one displayed rule, reproducing the
/// traditional operator inside the smart drill-down framework (Figure 4).
#[derive(Debug, Clone, Copy)]
pub struct TraditionalEmulation {
    column: usize,
}

impl TraditionalEmulation {
    /// Emulate a drill-down on column index `column`.
    pub fn new(column: usize) -> Self {
        Self { column }
    }
}

impl WeightFn for TraditionalEmulation {
    fn weight(&self, rule: &Rule, _table: &Table) -> f64 {
        if rule.is_star(self.column) {
            0.0
        } else {
            1.0
        }
    }

    fn name(&self) -> &str {
        "TraditionalEmulation"
    }
}

/// Wraps a weight to implement **star drill-down**'s `W'` (paper §3.1):
/// `W'(r) = 0` if `r` has a `?` in the clicked column, else `W(r)`.
#[derive(Debug, Clone, Copy)]
pub struct RequireColumn<W> {
    inner: W,
    column: usize,
}

impl<W: WeightFn> RequireColumn<W> {
    /// Zeroes `inner`'s weight for rules that leave `column` starred.
    pub fn new(inner: W, column: usize) -> Self {
        Self { inner, column }
    }
}

impl<W: WeightFn> WeightFn for RequireColumn<W> {
    fn weight(&self, rule: &Rule, table: &Table) -> f64 {
        if rule.is_star(self.column) {
            0.0
        } else {
            self.inner.weight(rule, table)
        }
    }

    fn name(&self) -> &str {
        "RequireColumn"
    }

    fn cache_tag(&self) -> Option<String> {
        self.inner
            .cache_tag()
            .map(|t| format!("require({}):{t}", self.column))
    }
}

impl<T: WeightFn + ?Sized> WeightFn for &T {
    fn weight(&self, rule: &Rule, table: &Table) -> f64 {
        (**self).weight(rule, table)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn max_weight(&self, table: &Table) -> f64 {
        (**self).max_weight(table)
    }

    fn cache_tag(&self) -> Option<String> {
        (**self).cache_tag()
    }
}

/// Checks monotonicity of `w` on every pair `(sub, super)` drawn from the
/// sub-rule lattice of `rule`. Test/diagnostic helper: exponential in
/// `rule.size()`.
pub fn check_monotone_on(w: &dyn WeightFn, rule: &Rule, table: &Table) -> bool {
    let subs = rule.all_sub_rules();
    for a in &subs {
        for b in &subs {
            if a.is_sub_rule_of(b) && w.weight(a, table) > w.weight(b, table) + 1e-12 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_table::Schema;

    fn t() -> Table {
        // Store: 3 distinct, Product: 4 distinct, Region: 2 distinct.
        Table::from_rows(
            Schema::new(["Store", "Product", "Region"]).unwrap(),
            &[
                &["Walmart", "cookies", "CA-1"],
                &["Target", "bicycles", "MA-3"],
                &["Costco", "comforters", "CA-1"],
                &["Walmart", "towels", "MA-3"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn size_weight_counts_instantiated_columns() {
        let table = t();
        let w = SizeWeight;
        assert_eq!(w.weight(&Rule::trivial(3), &table), 0.0);
        let r = Rule::from_pairs(&table, &[("Store", "Walmart"), ("Region", "CA-1")]).unwrap();
        assert_eq!(w.weight(&r, &table), 2.0);
        assert_eq!(w.max_weight(&table), 3.0);
    }

    #[test]
    fn bits_weight_uses_ceil_log2_cardinality() {
        let table = t();
        let w = BitsWeight;
        // Store: |c|=3 → ceil(log2 3)=2; Product: |c|=4 → 2; Region: |c|=2 → 1.
        let store = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        assert_eq!(w.weight(&store, &table), 2.0);
        let region = Rule::from_pairs(&table, &[("Region", "CA-1")]).unwrap();
        assert_eq!(w.weight(&region, &table), 1.0);
        assert_eq!(w.max_weight(&table), 5.0);
    }

    #[test]
    fn size_minus_one_zeroes_singletons() {
        let table = t();
        let w = SizeMinusOne;
        assert_eq!(w.weight(&Rule::trivial(3), &table), 0.0);
        let one = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        assert_eq!(w.weight(&one, &table), 0.0);
        let two = Rule::from_pairs(&table, &[("Store", "Walmart"), ("Region", "CA-1")]).unwrap();
        assert_eq!(w.weight(&two, &table), 1.0);
    }

    #[test]
    fn column_weight_generalizes_size_and_bits() {
        let table = t();
        let size_like = ColumnWeight::new(vec![1.0; 3], 1.0);
        let bits = BitsWeight;
        let bits_like = ColumnWeight::new(vec![2.0, 2.0, 1.0], 1.0);
        let full = Rule::from_pairs(
            &table,
            &[
                ("Store", "Walmart"),
                ("Product", "cookies"),
                ("Region", "CA-1"),
            ],
        )
        .unwrap();
        assert_eq!(
            size_like.weight(&full, &table),
            SizeWeight.weight(&full, &table)
        );
        assert_eq!(bits_like.weight(&full, &table), bits.weight(&full, &table));
    }

    #[test]
    fn column_weight_exponent_amplifies_size() {
        let table = t();
        let sq = ColumnWeight::new(vec![1.0; 3], 2.0);
        let two = Rule::from_pairs(&table, &[("Store", "Walmart"), ("Region", "CA-1")]).unwrap();
        assert_eq!(sq.weight(&two, &table), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_column_weight_panics() {
        let _ = ColumnWeight::new(vec![-1.0], 1.0);
    }

    #[test]
    fn traditional_emulation_is_indicator() {
        let table = t();
        let w = TraditionalEmulation::new(1);
        let on = Rule::from_pairs(&table, &[("Product", "cookies")]).unwrap();
        let off = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        assert_eq!(w.weight(&on, &table), 1.0);
        assert_eq!(w.weight(&off, &table), 0.0);
        // Extra columns don't change the weight.
        let both =
            Rule::from_pairs(&table, &[("Product", "cookies"), ("Store", "Walmart")]).unwrap();
        assert_eq!(w.weight(&both, &table), 1.0);
    }

    #[test]
    fn require_column_zeroes_starred_target() {
        let table = t();
        let w = RequireColumn::new(SizeWeight, 2);
        let without = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        let with = Rule::from_pairs(&table, &[("Store", "Walmart"), ("Region", "CA-1")]).unwrap();
        assert_eq!(w.weight(&without, &table), 0.0);
        assert_eq!(w.weight(&with, &table), 2.0);
    }

    #[test]
    fn all_shipped_weights_are_monotone() {
        let table = t();
        let full = Rule::from_pairs(
            &table,
            &[
                ("Store", "Walmart"),
                ("Product", "cookies"),
                ("Region", "CA-1"),
            ],
        )
        .unwrap();
        assert!(check_monotone_on(&SizeWeight, &full, &table));
        assert!(check_monotone_on(&BitsWeight, &full, &table));
        assert!(check_monotone_on(&SizeMinusOne, &full, &table));
        assert!(check_monotone_on(
            &ColumnWeight::new(vec![0.5, 2.0, 0.0], 1.5),
            &full,
            &table
        ));
        assert!(check_monotone_on(
            &TraditionalEmulation::new(1),
            &full,
            &table
        ));
        assert!(check_monotone_on(
            &RequireColumn::new(SizeWeight, 0),
            &full,
            &table
        ));
    }

    #[test]
    fn bits_exact_matches_cardinalities() {
        let table = t();
        let w = ColumnWeight::bits_exact(&table, 1.0);
        let store = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        assert!((w.weight(&store, &table) - 3.0f64.log2()).abs() < 1e-12);
    }
}
