//! The two smart drill-down operations (paper §2.3 and §3.1).
//!
//! * **Rule drill-down** — the analyst clicks a rule `r'`; expand it into the
//!   best list of `k` strict super-rules of `r'`, scored over the tuples
//!   covered by `r'` (the paper's reduction filters `T` to `T_{r'}`).
//! * **Star drill-down** — the analyst clicks a `?` in column `c` of `r'`;
//!   same, but every displayed rule must instantiate column `c`. The paper
//!   implements this by swapping in `W'(r) = 0` when `r` leaves `c` starred;
//!   we do exactly that via [`crate::weight::RequireColumn`].
//!
//! Both return a [`BrsResult`] whose rules are full rules (base values
//! merged in), ready for display.

use crate::{Brs, BrsResult, RequireColumn, Rule, WeightFn};
use sdd_table::TableView;

/// Which drill-down the analyst performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrillDownKind {
    /// Click on the rule itself.
    Rule,
    /// Click on the `?` in the given column.
    Star(usize),
}

/// Filters `view` to the tuples covered by `base` (the paper's `T_{r'}`),
/// evaluating the rule column-at-a-time over the dictionary-encoded column
/// slices (see [`crate::kernel::for_each_covered_position`]).
pub fn filter_to_rule<'a>(view: &TableView<'a>, base: &Rule) -> TableView<'a> {
    let table = view.table();
    let mut rows = Vec::new();
    let mut weights = view.weights().map(|_| Vec::new());
    crate::kernel::for_each_covered_position(view, base, |i| {
        rows.push(view.row_at(i));
        if let Some(w) = &mut weights {
            w.push(view.weight_at(i));
        }
    });
    match weights {
        Some(w) => TableView::with_rows_and_weights(table, rows, w),
        None => TableView::with_rows(table, rows),
    }
}

/// Rule drill-down with explicit optimizer configuration.
pub fn drill_down_with(brs: &Brs<'_>, view: &TableView<'_>, base: &Rule, k: usize) -> BrsResult {
    let filtered = filter_to_rule(view, base);
    brs.run_with_base(&filtered, Some(base.clone()), k)
}

/// Star drill-down with explicit optimizer configuration.
///
/// # Panics
/// If `base` already instantiates `column` (there is no `?` to click).
pub fn star_drill_down_with(
    brs: &Brs<'_>,
    view: &TableView<'_>,
    base: &Rule,
    column: usize,
    k: usize,
) -> BrsResult {
    assert!(
        base.is_star(column),
        "star drill-down requires a ? in the clicked column"
    );
    let filtered = filter_to_rule(view, base);
    // W'(r) = 0 when column is starred (paper §3.1).
    let wrapped = RequireColumn::new(brs.weight_fn(), column);
    let inner = Brs::new(&wrapped).inherit_config(brs);
    inner.run_with_base(&filtered, Some(base.clone()), k)
}

/// Rule drill-down with default configuration (`mw` = max possible weight).
pub fn drill_down(view: &TableView<'_>, weight: &dyn WeightFn, base: &Rule, k: usize) -> BrsResult {
    drill_down_with(&Brs::new(weight), view, base, k)
}

/// Star drill-down with default configuration.
pub fn star_drill_down(
    view: &TableView<'_>,
    weight: &dyn WeightFn,
    base: &Rule,
    column: usize,
    k: usize,
) -> BrsResult {
    star_drill_down_with(&Brs::new(weight), view, base, column, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SizeWeight;
    use sdd_table::{Schema, Table};

    /// Miniature of the paper's department-store example.
    fn t() -> Table {
        let mut rows: Vec<[&str; 3]> = Vec::new();
        // Walmart block: cookies dominate, then two regional clusters.
        rows.extend(std::iter::repeat_n(["Walmart", "cookies", "AK-1"], 5));
        rows.extend(std::iter::repeat_n(["Walmart", "towels", "CA-1"], 4));
        rows.extend(std::iter::repeat_n(["Walmart", "soap", "WA-5"], 3));
        rows.push(["Walmart", "soap", "CA-1"]);
        // Non-Walmart noise.
        rows.extend(std::iter::repeat_n(["Target", "bicycles", "MA-3"], 6));
        rows.extend(std::iter::repeat_n(["Costco", "comforters", "MA-3"], 2));
        Table::from_rows(Schema::new(["Store", "Product", "Region"]).unwrap(), &rows).unwrap()
    }

    #[test]
    fn rule_drill_down_returns_strict_super_rules() {
        let table = t();
        let base = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        let res = drill_down(&table.view(), &SizeWeight, &base, 3);
        assert!(!res.rules.is_empty());
        for s in &res.rules {
            assert!(s.rule.is_strict_super_rule_of(&base), "{:?}", s.rule);
        }
    }

    #[test]
    fn rule_drill_down_counts_are_within_base() {
        let table = t();
        let base = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        let res = drill_down(&table.view(), &SizeWeight, &base, 3);
        let base_count = table
            .view()
            .iter()
            .filter(|wr| base.covers_row(&table, wr.row))
            .count() as f64;
        for s in &res.rules {
            assert!(s.count <= base_count);
        }
        // The Walmart×cookies cluster must be found.
        assert!(res
            .rules
            .iter()
            .any(|s| s.rule.display(&table).contains("cookies")));
    }

    #[test]
    fn star_drill_down_instantiates_the_clicked_column() {
        let table = t();
        let base = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        let region = table.schema().index_of("Region").unwrap();
        let res = star_drill_down(&table.view(), &SizeWeight, &base, region, 3);
        assert!(!res.rules.is_empty());
        for s in &res.rules {
            assert!(
                !s.rule.is_star(region),
                "{:?} leaves Region starred",
                s.rule
            );
            assert!(s.rule.is_strict_super_rule_of(&base));
        }
        // CA-1 is Walmart's biggest region (5 rows).
        assert!(res
            .rules
            .iter()
            .any(|s| s.rule.display(&table).contains("CA-1")));
    }

    #[test]
    #[should_panic(expected = "requires a ?")]
    fn star_drill_down_on_instantiated_column_panics() {
        let table = t();
        let base = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        let store = table.schema().index_of("Store").unwrap();
        let _ = star_drill_down(&table.view(), &SizeWeight, &base, store, 3);
    }

    #[test]
    fn drill_down_on_trivial_rule_equals_plain_run() {
        let table = t();
        let trivial = Rule::trivial(3);
        let a = drill_down(&table.view(), &SizeWeight, &trivial, 3);
        let b = Brs::new(&SizeWeight).run(&table.view(), 3);
        assert_eq!(a.rules_only(), b.rules_only());
    }

    #[test]
    fn drill_down_on_rule_covering_nothing_returns_empty() {
        let table = t();
        // Build a rule that covers nothing: Target × cookies never co-occurs.
        let base =
            Rule::from_pairs(&table, &[("Store", "Target"), ("Product", "cookies")]).unwrap();
        let res = drill_down(&table.view(), &SizeWeight, &base, 3);
        assert!(res.rules.is_empty());
    }

    #[test]
    fn filter_to_rule_matches_coverage() {
        let table = t();
        let base = Rule::from_pairs(&table, &[("Region", "MA-3")]).unwrap();
        let filtered = filter_to_rule(&table.view(), &base);
        assert_eq!(filtered.len(), 8);
    }
}
