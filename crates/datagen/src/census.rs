//! Synthetic substitute for the UCI *US Census 1990* extract (§5).
//!
//! The original: ~2.5 million persons × 68 pre-bucketized attributes. What
//! the paper's experiments exercise on it is **scale** (the sample-creation
//! scan dominates, §5.2.3) and **skew** (a-priori pruning bites because
//! counts decay fast with rule size). We reproduce both:
//!
//! * 68 columns named after the UCI attributes, with a realistic mix of
//!   cardinalities (binary flags through ~40-value buckets),
//! * a latent-profile mixture: each row draws a hidden profile (Zipf-
//!   distributed) and copies the profile's value for each column with
//!   probability `coherence`, otherwise a Zipf-random value — producing
//!   correlated blocks that smart drill-down can find,
//! * configurable row count, so tests run on thousands of rows while the
//!   benchmark harness runs the paper-scale 2.5 M.

use crate::zipf::Zipf;
use rand::{rngs::StdRng, Rng, SeedableRng};
use sdd_table::{Schema, Table};

/// Row count of the original extract.
pub const FULL_ROWS: usize = 2_458_285;

/// The 68 attribute names of the UCI extract (case id excluded).
pub const COLUMNS: [&str; 68] = [
    "dAge",
    "dAncstry1",
    "dAncstry2",
    "iAvail",
    "iCitizen",
    "iClass",
    "dDepart",
    "iDisabl1",
    "iDisabl2",
    "iEnglish",
    "iFeb55",
    "iFertil",
    "dHispanic",
    "dHour89",
    "dHours",
    "iImmigr",
    "dIncome1",
    "dIncome2",
    "dIncome3",
    "dIncome4",
    "dIncome5",
    "dIncome6",
    "dIncome7",
    "dIncome8",
    "dIndustry",
    "iKorean",
    "iLang1",
    "iLooking",
    "iMarital",
    "iMay75880",
    "iMeans",
    "iMilitary",
    "iMobility",
    "iMobillim",
    "dOccup",
    "iOthrserv",
    "iPerscare",
    "dPOB",
    "dPoverty",
    "dPwgt1",
    "iRagechld",
    "dRearning",
    "iRelat1",
    "iRelat2",
    "iRemplpar",
    "iRiders",
    "iRlabor",
    "iRownchld",
    "dRpincome",
    "iRPOB",
    "iRrelchld",
    "iRspouse",
    "iRvetserv",
    "iSchool",
    "iSept80",
    "iSex",
    "iSubfam1",
    "iSubfam2",
    "iTmpabsnt",
    "dTravtime",
    "iVietnam",
    "dWeek89",
    "iWork89",
    "iWorklwk",
    "iWWII",
    "iYearsch",
    "iYearwrk",
    "dYrsserv",
];

/// Per-column cardinality: deterministic, heavy on small buckets like the
/// original (`i*` columns are mostly 2–5 codes, `d*` columns up to ~40).
pub fn cardinality(col: usize) -> usize {
    let name = COLUMNS[col];
    if name.starts_with('i') {
        match col % 4 {
            0 => 2,
            1 => 3,
            2 => 4,
            _ => 5,
        }
    } else {
        match col % 5 {
            0 => 8,
            1 => 10,
            2 => 13,
            3 => 17,
            _ => 40,
        }
    }
}

/// Configuration for the census generator.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Number of rows to generate.
    pub n_rows: usize,
    /// Number of latent profiles (correlated blocks).
    pub n_profiles: usize,
    /// Probability a cell copies its profile's value (vs. Zipf noise).
    pub coherence: f64,
    /// Zipf exponent for both profile choice and noise values.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        Self {
            n_rows: 100_000,
            n_profiles: 24,
            coherence: 0.55,
            skew: 1.1,
            seed: 1990,
        }
    }
}

/// Generates a census-shaped table with `n_rows` rows. Deterministic per
/// `seed`.
pub fn census(n_rows: usize, seed: u64) -> Table {
    census_with(CensusConfig {
        n_rows,
        seed,
        ..CensusConfig::default()
    })
}

/// Generates with full control over the mixture parameters.
pub fn census_with(cfg: CensusConfig) -> Table {
    assert!(cfg.n_profiles > 0, "need at least one profile");
    assert!(
        (0.0..=1.0).contains(&cfg.coherence),
        "coherence is a probability"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_cols = COLUMNS.len();

    // Pre-intern every possible label per column so dictionary codes are
    // stable and the builder never re-hashes long strings: labels are "v0",
    // "v1", ... per column.
    let labels: Vec<Vec<String>> = (0..n_cols)
        .map(|c| (0..cardinality(c)).map(|v| format!("v{v}")).collect())
        .collect();

    // Latent profiles: one preferred value per column each.
    let profiles: Vec<Vec<usize>> = (0..cfg.n_profiles)
        .map(|_| {
            (0..n_cols)
                .map(|c| rng.gen_range(0..cardinality(c)))
                .collect()
        })
        .collect();
    let profile_z = Zipf::new(cfg.n_profiles, cfg.skew);
    let noise_z: Vec<Zipf> = (0..n_cols)
        .map(|c| Zipf::new(cardinality(c), cfg.skew))
        .collect();

    let schema = Schema::new(COLUMNS).expect("unique names");
    let mut b = Table::builder(schema);
    b.reserve(cfg.n_rows);
    let mut row: Vec<&str> = Vec::with_capacity(n_cols);
    for _ in 0..cfg.n_rows {
        let p = profile_z.sample(&mut rng);
        row.clear();
        for c in 0..n_cols {
            let v = if rng.gen::<f64>() < cfg.coherence {
                profiles[p][c]
            } else {
                noise_z[c].sample(&mut rng)
            };
            row.push(&labels[c][v]);
        }
        b.push_row(&row).expect("68 fields");
    }
    b.build().expect("no measures")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_table::stats::column_stats;

    #[test]
    fn has_68_columns_with_expected_cardinalities() {
        let t = census(2000, 1);
        assert_eq!(t.n_columns(), 68);
        assert_eq!(t.n_rows(), 2000);
        for c in 0..68 {
            assert!(t.cardinality(c) <= cardinality(c), "column {c}");
            assert!(t.cardinality(c) >= 1);
        }
    }

    #[test]
    fn values_are_skewed() {
        let t = census(5000, 2);
        // Most columns should have a clearly dominant value thanks to the
        // Zipf profile mixture.
        let dominated = (0..68)
            .filter(|&c| column_stats(&t, c).top_fraction > 1.5 / cardinality(c) as f64)
            .count();
        // Binary columns can't exceed the 1.5× bar as easily; ~half the
        // columns clearing it is strong evidence of skew.
        assert!(dominated > 34, "only {dominated} columns show skew");
    }

    #[test]
    fn profiles_induce_cross_column_correlation() {
        let t = census(8000, 3);
        // Take two high-cardinality columns and check that the joint top
        // pair is far more frequent than independence would predict.
        let (c1, c2) = (4, 6); // iCitizen (3 codes), dDepart (13 codes)
        let s1 = column_stats(&t, c1);
        let s2 = column_stats(&t, c2);
        let (v1, v2) = (s1.top_code.unwrap(), s2.top_code.unwrap());
        let joint = (0..t.n_rows() as u32)
            .filter(|&r| t.code(r, c1) == v1 && t.code(r, c2) == v2)
            .count() as f64
            / t.n_rows() as f64;
        let indep = s1.top_fraction * s2.top_fraction;
        assert!(joint > 1.05 * indep, "joint {joint} vs independent {indep}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = census(300, 5);
        let b = census(300, 5);
        for r in 0..300u32 {
            for c in 0..68 {
                assert_eq!(a.code(r, c), b.code(r, c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn zero_profiles_rejected() {
        let _ = census_with(CensusConfig {
            n_profiles: 0,
            ..CensusConfig::default()
        });
    }
}
