//! A small Zipf-distribution sampler.
//!
//! Real categorical data is heavy-tailed; the paper's pruning analysis
//! (§3.5, "Runtime analysis") explicitly models candidate decay via the
//! frequency `x` of the most common value. The synthetic datasets use this
//! sampler to reproduce that skew.

use rand::Rng;

/// Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank = r) ∝ 1 / (r + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s ≥ 0`.
    ///
    /// `s = 0` is uniform; larger `s` concentrates mass on low ranks.
    ///
    /// # Panics
    /// If `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize.
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }

    /// The probability of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[r] - self.cumulative[r - 1]
        }
    }
}

/// Picks one label from `(label, weight)` pairs proportionally to weight.
pub fn weighted_pick<'a, R: Rng + ?Sized>(rng: &mut R, choices: &[(&'a str, f64)]) -> &'a str {
    debug_assert!(!choices.is_empty());
    let total: f64 = choices.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    for (label, w) in choices {
        u -= w;
        if u <= 0.0 {
            return label;
        }
    }
    choices.last().expect("non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(10, 1.5);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(5));
        let total: f64 = (0..10).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_follow_the_distribution_roughly() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.pmf(r) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt() + 10.0,
                "rank {r}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut heads = 0;
        for _ in 0..10_000 {
            if weighted_pick(&mut rng, &[("h", 9.0), ("t", 1.0)]) == "h" {
                heads += 1;
            }
        }
        assert!(heads > 8_500 && heads < 9_500, "{heads}");
    }
}
