//! # sdd-datagen
//!
//! Synthetic dataset generators for the smart drill-down reproduction.
//!
//! The paper evaluates on two real datasets (the Stanford *Marketing*
//! survey and the UCI *US Census 1990* extract) plus a department-store
//! walkthrough example. None of those can be shipped here, so this crate
//! generates synthetic equivalents that preserve the properties the
//! algorithms are sensitive to — row counts, per-column cardinalities,
//! frequency skew, and planted correlation structure. DESIGN.md §3 records
//! each substitution and why it preserves the paper's behaviour.
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]

pub mod census;
pub mod marketing;
pub mod retail;
pub mod zipf;

pub use census::census;
pub use marketing::marketing;
pub use retail::retail;
