//! Synthetic substitute for the paper's *Marketing* dataset (§5).
//!
//! The original: 9409 questionnaires from San Francisco Bay Area shopping
//! malls, 14 pre-bucketized demographic columns with ≤ 10 distinct values
//! each. We generate the same shape — the paper's exact column names and
//! order, matching cardinalities, heavy-tailed marginals — and plant the
//! correlations the paper's screenshots surface:
//!
//! * most respondents have lived in the Bay Area > 10 years (Fig. 1),
//! * a large female × >10-years block (Fig. 1 rule 3),
//! * a never-married male × >10-years block (Fig. 1 rule 4),
//! * education/income/occupation coupling (Fig. 2's education expansion),
//! * household-structure couplings (dual income ⇔ married, persons-under-18
//!   ≤ persons-in-household, homeowner ⇔ house, language ⇔ ethnicity) that
//!   give the Bits weighting something multi-column to find (Figs. 6–7).

use crate::zipf::weighted_pick;
use rand::{rngs::StdRng, SeedableRng};
use sdd_table::{Schema, Table};

/// Row count of the original dataset.
pub const N_ROWS: usize = 9409;

/// The paper's 14 demographic columns, in the order it lists them (§5).
pub const COLUMNS: [&str; 14] = [
    "Income",
    "Sex",
    "MaritalStatus",
    "Age",
    "Education",
    "Occupation",
    "YearsInBayArea",
    "DualIncome",
    "PersonsInHousehold",
    "PersonsUnder18",
    "HouseholderStatus",
    "TypeOfHome",
    "Ethnicity",
    "Language",
];

/// Generates the synthetic Marketing table (9409 × 14). Deterministic per
/// `seed`.
pub fn marketing(seed: u64) -> Table {
    marketing_sized(N_ROWS, seed)
}

/// Same generator with a custom row count (for quick tests).
pub fn marketing_sized(n_rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(COLUMNS).expect("unique names");
    let mut b = Table::builder(schema);
    b.reserve(n_rows);
    for _ in 0..n_rows {
        let row = sample_person(&mut rng);
        b.push_row(&row).expect("14 fields");
    }
    b.build().expect("no measures")
}

fn sample_person(rng: &mut StdRng) -> [&'static str; 14] {
    // Sex: slight female majority, as in the original (4918 F / 4075 M + NA).
    let sex = weighted_pick(rng, &[("Female", 52.3), ("Male", 47.7)]);

    // Years in Bay Area: dominated by long-term residents.
    let years = weighted_pick(
        rng,
        &[
            (">10years", 59.0),
            ("7-10years", 12.0),
            ("4-6years", 11.0),
            ("1-3years", 11.0),
            ("<1year", 7.0),
        ],
    );

    // Age, skewed toward 18–34 (mall-intercept survey population).
    let age = weighted_pick(
        rng,
        &[
            ("14-17", 6.0),
            ("18-24", 22.0),
            ("25-34", 28.0),
            ("35-44", 18.0),
            ("45-54", 11.0),
            ("55-64", 8.0),
            ("65+", 7.0),
        ],
    );

    // Marital status depends on age; long-term never-married males form a
    // visible block (paper Fig. 1: 980 never-married, >10yr males).
    let marital = match age {
        "14-17" => weighted_pick(rng, &[("NeverMarried", 97.0), ("Married", 3.0)]),
        "18-24" => weighted_pick(
            rng,
            &[
                ("NeverMarried", 70.0),
                ("Married", 20.0),
                ("Cohabiting", 10.0),
            ],
        ),
        "25-34" => weighted_pick(
            rng,
            &[
                ("Married", 45.0),
                ("NeverMarried", if sex == "Male" { 40.0 } else { 30.0 }),
                ("Cohabiting", 10.0),
                ("Divorced", 5.0),
            ],
        ),
        "35-44" => weighted_pick(
            rng,
            &[
                ("Married", 60.0),
                ("Divorced", 15.0),
                ("NeverMarried", if sex == "Male" { 18.0 } else { 10.0 }),
                ("Cohabiting", 7.0),
            ],
        ),
        _ => weighted_pick(
            rng,
            &[
                ("Married", 62.0),
                ("Divorced", 14.0),
                ("Widowed", 14.0),
                ("NeverMarried", 8.0),
                ("Cohabiting", 2.0),
            ],
        ),
    };

    // Education, coupled to age (younger respondents still in school).
    let education = match age {
        "14-17" => weighted_pick(
            rng,
            &[("Grade9-11", 70.0), ("HSGraduate", 25.0), ("<Grade9", 5.0)],
        ),
        "18-24" => weighted_pick(
            rng,
            &[
                ("College1-3", 45.0),
                ("HSGraduate", 30.0),
                ("CollegeGrad", 15.0),
                ("Grade9-11", 8.0),
                ("GradStudy", 2.0),
            ],
        ),
        _ => weighted_pick(
            rng,
            &[
                ("CollegeGrad", 28.0),
                ("College1-3", 25.0),
                ("HSGraduate", 24.0),
                ("GradStudy", 14.0),
                ("Grade9-11", 6.0),
                ("<Grade9", 3.0),
            ],
        ),
    };

    // Income coupled to education and age.
    let income_bias = match education {
        "GradStudy" => 3,
        "CollegeGrad" => 2,
        "College1-3" => 1,
        _ => 0,
    } + if age == "14-17" || age == "18-24" {
        -2i32
    } else {
        0
    };
    let income = pick_income(rng, income_bias);

    // Occupation coupled to age/education.
    let occupation = match age {
        "14-17" => weighted_pick(rng, &[("Student", 90.0), ("Sales", 7.0), ("Laborer", 3.0)]),
        "18-24" => weighted_pick(
            rng,
            &[
                ("Student", 40.0),
                ("Sales", 16.0),
                ("Clerical", 14.0),
                ("Professional", 14.0),
                ("Laborer", 10.0),
                ("Military", 4.0),
                ("Unemployed", 2.0),
            ],
        ),
        "65+" => weighted_pick(
            rng,
            &[
                ("Retired", 80.0),
                ("Professional", 10.0),
                ("Homemaker", 10.0),
            ],
        ),
        _ => {
            let prof_w = match education {
                "GradStudy" => 55.0,
                "CollegeGrad" => 45.0,
                _ => 22.0,
            };
            weighted_pick(
                rng,
                &[
                    ("Professional", prof_w),
                    ("Clerical", 16.0),
                    ("Sales", 13.0),
                    ("Laborer", 11.0),
                    ("Homemaker", if sex == "Female" { 13.0 } else { 1.0 }),
                    ("Unemployed", 4.0),
                    ("Retired", 3.0),
                    ("Military", 2.0),
                ],
            )
        }
    };

    // Dual income: structurally tied to marital status (the original codes
    // "not married" as its own value).
    let dual_income = if marital == "Married" {
        weighted_pick(rng, &[("Yes", 55.0), ("No", 45.0)])
    } else {
        "NotMarried"
    };

    // Household size and minors: under-18 count bounded by household size.
    let persons = weighted_pick(
        rng,
        &[
            ("1", 18.0),
            ("2", 30.0),
            ("3", 19.0),
            ("4", 17.0),
            ("5", 9.0),
            ("6", 4.0),
            ("7", 1.5),
            ("8", 1.0),
            ("9+", 0.5),
        ],
    );
    let max_minors = persons.trim_end_matches('+').parse::<usize>().unwrap_or(9) - 1;
    let under18 = pick_under18(rng, max_minors, marital);

    // Householder status / home type coupling.
    let householder = match age {
        "14-17" => "LivesWithFamily",
        "18-24" => weighted_pick(
            rng,
            &[("Rent", 45.0), ("LivesWithFamily", 40.0), ("Own", 15.0)],
        ),
        _ => weighted_pick(
            rng,
            &[("Own", 50.0), ("Rent", 40.0), ("LivesWithFamily", 10.0)],
        ),
    };
    let home = if householder == "Own" {
        weighted_pick(
            rng,
            &[
                ("House", 75.0),
                ("Condo", 15.0),
                ("MobileHome", 7.0),
                ("Other", 3.0),
            ],
        )
    } else {
        weighted_pick(
            rng,
            &[
                ("Apartment", 55.0),
                ("House", 30.0),
                ("Condo", 10.0),
                ("Other", 5.0),
            ],
        )
    };

    // Ethnicity / language coupling.
    let ethnicity = weighted_pick(
        rng,
        &[
            ("White", 62.0),
            ("Hispanic", 12.0),
            ("Asian", 11.0),
            ("Black", 8.0),
            ("EastIndian", 2.5),
            ("PacificIslander", 2.0),
            ("AmericanIndian", 1.5),
            ("Other", 1.0),
        ],
    );
    let language = match ethnicity {
        "Hispanic" => weighted_pick(rng, &[("Spanish", 55.0), ("English", 43.0), ("Other", 2.0)]),
        "Asian" | "EastIndian" => weighted_pick(rng, &[("English", 70.0), ("Other", 30.0)]),
        _ => weighted_pick(rng, &[("English", 97.0), ("Other", 2.0), ("Spanish", 1.0)]),
    };

    [
        income,
        sex,
        marital,
        age,
        education,
        occupation,
        years,
        dual_income,
        persons,
        under18,
        householder,
        home,
        ethnicity,
        language,
    ]
}

fn pick_income(rng: &mut StdRng, bias: i32) -> &'static str {
    const LEVELS: [&str; 9] = [
        "<$10k", "$10-15k", "$15-20k", "$20-25k", "$25-30k", "$30-40k", "$40-50k", "$50-75k",
        "$75k+",
    ];
    // Base heavy-ish middle; bias shifts the center.
    let center = (3 + bias).clamp(0, 8) as f64;
    let weights: Vec<(&str, f64)> = LEVELS
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let d = (i as f64 - center).abs();
            (l, (6.0 - d).max(0.5))
        })
        .collect();
    weighted_pick(rng, &weights)
}

fn pick_under18(rng: &mut StdRng, max_minors: usize, marital: &str) -> &'static str {
    const LABELS: [&str; 9] = ["0", "1", "2", "3", "4", "5", "6", "7", "8+"];
    if max_minors == 0 {
        return "0";
    }
    let married_bonus = if marital == "Married" { 1.4 } else { 0.6 };
    let weights: Vec<(&str, f64)> = LABELS
        .iter()
        .take(max_minors + 1)
        .enumerate()
        .map(|(i, &l)| {
            let w = if i == 0 {
                10.0
            } else {
                6.0 * married_bonus / i as f64
            };
            (l, w)
        })
        .collect();
    weighted_pick(rng, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::{rule_count, Rule};
    use sdd_table::stats::column_stats;

    #[test]
    fn has_paper_shape() {
        let t = marketing_sized(2000, 42);
        assert_eq!(t.n_rows(), 2000);
        assert_eq!(t.n_columns(), 14);
        assert_eq!(t.schema().column_name(4), "Education");
        // Every column bucketized: ≤ 10 distinct values (paper §5).
        for c in 0..14 {
            assert!(
                t.cardinality(c) <= 10,
                "column {c} has {}",
                t.cardinality(c)
            );
        }
    }

    #[test]
    fn full_size_matches_paper() {
        let t = marketing(42);
        assert_eq!(t.n_rows(), N_ROWS);
    }

    #[test]
    fn long_term_residents_dominate() {
        let t = marketing_sized(3000, 42);
        let s = column_stats(&t, t.schema().index_of("YearsInBayArea").unwrap());
        assert!(s.top_fraction > 0.45);
    }

    #[test]
    fn planted_female_longterm_block_exists() {
        let t = marketing_sized(5000, 42);
        let view = t.view();
        let r = Rule::from_pairs(&t, &[("Sex", "Female"), ("YearsInBayArea", ">10years")]).unwrap();
        let c = rule_count(&view, &r);
        // Roughly 52% × 59% ≈ 30% of rows.
        assert!(c > 0.2 * 5000.0, "block too small: {c}");
    }

    #[test]
    fn dual_income_is_consistent_with_marital_status() {
        let t = marketing_sized(3000, 42);
        let marital = t.schema().index_of("MaritalStatus").unwrap();
        let dual = t.schema().index_of("DualIncome").unwrap();
        for row in 0..t.n_rows() as u32 {
            let m = t.value(row, marital);
            let d = t.value(row, dual);
            if m == "Married" {
                assert_ne!(d, "NotMarried");
            } else {
                assert_eq!(d, "NotMarried");
            }
        }
    }

    #[test]
    fn minors_never_exceed_household_size() {
        let t = marketing_sized(3000, 42);
        let persons = t.schema().index_of("PersonsInHousehold").unwrap();
        let under = t.schema().index_of("PersonsUnder18").unwrap();
        for row in 0..t.n_rows() as u32 {
            let p: usize = t.value(row, persons).trim_end_matches('+').parse().unwrap();
            let u: usize = t.value(row, under).trim_end_matches('+').parse().unwrap();
            assert!(
                u < p || (p == 9 && u <= 8),
                "row {row}: {u} minors in household of {p}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = marketing_sized(200, 9);
        let b = marketing_sized(200, 9);
        for row in 0..200u32 {
            for c in 0..14 {
                assert_eq!(a.value(row, c), b.value(row, c));
            }
        }
    }
}
