//! The department-store walkthrough dataset (paper §1, Tables 1–3).
//!
//! 6000 rows of (Store, Product, Region) + a Sales measure, with the
//! paper's patterns planted **exactly**:
//!
//! * 200 × (Target, bicycles, ?)
//! * 600 × (?, comforters, MA-3)
//! * 1000 × (Walmart, ?, ?), containing
//!   * 200 × (Walmart, cookies, ?)
//!   * 150 × (Walmart, ?, CA-1)
//!   * 130 × (Walmart, ?, WA-5)
//! * 4200 background rows drawn from disjoint value pools so no background
//!   pattern competes with the planted ones.
//!
//! Expanding the trivial rule with `k = 3` under Size weighting reproduces
//! Table 2; drilling into the Walmart rule reproduces Table 3.

use crate::zipf::Zipf;
use rand::{rngs::StdRng, Rng, SeedableRng};
use sdd_table::{Schema, Table};

/// Total number of rows (the paper's 6000-tuple answer table).
pub const N_ROWS: usize = 6000;

/// Generates the walkthrough table. Deterministic per `seed`.
pub fn retail(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);

    // Disjoint pools for background noise: planted values never appear here.
    let noise_stores: Vec<String> = (0..30).map(|i| format!("Store-{i:02}")).collect();
    let noise_products: Vec<String> = (0..40).map(|i| format!("Product-{i:02}")).collect();
    let noise_regions: Vec<String> = (0..25).map(|i| format!("Region-{i:02}")).collect();
    // Nearly flat noise (s = 0.2): enough variety to be realistic, flat
    // enough that no background value outranks the planted patterns (the
    // smallest planted rule scores 400 under Size weighting; the most
    // common noise value stays around half of that).
    let store_z = Zipf::new(noise_stores.len(), 0.2);
    let product_z = Zipf::new(noise_products.len(), 0.2);
    let region_z = Zipf::new(noise_regions.len(), 0.2);

    let mut rows: Vec<[String; 3]> = Vec::with_capacity(N_ROWS);
    let push = |rows: &mut Vec<[String; 3]>, s: String, p: String, r: String| {
        rows.push([s, p, r]);
    };

    // 200 × (Target, bicycles, ?): regions from the noise pool.
    for _ in 0..200 {
        let r = noise_regions[region_z.sample(&mut rng)].clone();
        push(&mut rows, "Target".into(), "bicycles".into(), r);
    }
    // 600 × (?, comforters, MA-3): stores from the noise pool.
    for _ in 0..600 {
        let s = noise_stores[store_z.sample(&mut rng)].clone();
        push(&mut rows, s, "comforters".into(), "MA-3".into());
    }
    // 1000 × (Walmart, ?, ?).
    //   200 cookies (noise regions), 150 CA-1 (noise products), 130 WA-5
    //   (noise products), 520 fully-noise products/regions.
    for _ in 0..200 {
        let r = noise_regions[region_z.sample(&mut rng)].clone();
        push(&mut rows, "Walmart".into(), "cookies".into(), r);
    }
    for _ in 0..150 {
        let p = noise_products[product_z.sample(&mut rng)].clone();
        push(&mut rows, "Walmart".into(), p, "CA-1".into());
    }
    for _ in 0..130 {
        let p = noise_products[product_z.sample(&mut rng)].clone();
        push(&mut rows, "Walmart".into(), p, "WA-5".into());
    }
    for _ in 0..520 {
        let p = noise_products[product_z.sample(&mut rng)].clone();
        let r = noise_regions[region_z.sample(&mut rng)].clone();
        push(&mut rows, "Walmart".into(), p, r);
    }
    // 4200 background rows.
    for _ in 0..(N_ROWS - rows.len()) {
        let s = noise_stores[store_z.sample(&mut rng)].clone();
        let p = noise_products[product_z.sample(&mut rng)].clone();
        let r = noise_regions[region_z.sample(&mut rng)].clone();
        push(&mut rows, s, p, r);
    }

    // Shuffle so planted blocks are not contiguous (samplers must not rely
    // on physical order).
    for i in (1..rows.len()).rev() {
        let j = rng.gen_range(0..=i);
        rows.swap(i, j);
    }

    let schema = Schema::new(["Store", "Product", "Region"]).expect("unique names");
    let mut b = Table::builder(schema);
    b.reserve(rows.len());
    let mut sales = Vec::with_capacity(rows.len());
    for row in &rows {
        b.push_row(&[row[0].as_str(), row[1].as_str(), row[2].as_str()])
            .expect("arity 3");
        sales.push(rng.gen_range(40.0f64..400.0).round());
    }
    b.add_measure("Sales", sales).expect("fresh name");
    b.build().expect("measure aligned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::{rule_count, Rule};

    #[test]
    fn planted_counts_match_the_paper_exactly() {
        let t = retail(42);
        assert_eq!(t.n_rows(), N_ROWS);
        let view = t.view();
        let count =
            |pairs: &[(&str, &str)]| rule_count(&view, &Rule::from_pairs(&t, pairs).unwrap());
        assert_eq!(
            count(&[("Store", "Target"), ("Product", "bicycles")]),
            200.0
        );
        assert_eq!(
            count(&[("Product", "comforters"), ("Region", "MA-3")]),
            600.0
        );
        assert_eq!(count(&[("Store", "Walmart")]), 1000.0);
        assert_eq!(
            count(&[("Store", "Walmart"), ("Product", "cookies")]),
            200.0
        );
        assert_eq!(count(&[("Store", "Walmart"), ("Region", "CA-1")]), 150.0);
        assert_eq!(count(&[("Store", "Walmart"), ("Region", "WA-5")]), 130.0);
    }

    #[test]
    fn planted_values_do_not_leak_into_noise() {
        let t = retail(42);
        let view = t.view();
        // Target only ever sells bicycles; comforters only in MA-3.
        let target = rule_count(
            &view,
            &Rule::from_pairs(&t, &[("Store", "Target")]).unwrap(),
        );
        assert_eq!(target, 200.0);
        let comf = rule_count(
            &view,
            &Rule::from_pairs(&t, &[("Product", "comforters")]).unwrap(),
        );
        assert_eq!(comf, 600.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = retail(7);
        let b = retail(7);
        assert_eq!(a.n_rows(), b.n_rows());
        for row in 0..50 {
            for col in 0..3 {
                assert_eq!(a.value(row, col), b.value(row, col));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = retail(1);
        let b = retail(2);
        let same = (0..100).all(|r| (0..3).all(|c| a.value(r, c) == b.value(r, c)));
        assert!(!same);
    }

    #[test]
    fn has_sales_measure() {
        let t = retail(42);
        let sales = t.measure("Sales").unwrap();
        assert_eq!(sales.len(), N_ROWS);
        assert!(sales.iter().all(|&s| (40.0..=400.0).contains(&s)));
    }
}
