//! # sdd-cli
//!
//! A terminal REPL around [`sdd_explorer::Explorer`] — the equivalent of
//! the paper's interactive prototype (demonstrated at VLDB 2015), driving
//! smart drill-downs, star drill-downs, roll-ups, weight switches, and
//! exact-count refreshes from a command line.
//!
//! The REPL core is I/O-generic ([`run`]) so the full interaction loop is
//! unit-testable with string buffers; `src/main.rs` wires it to
//! stdin/stdout.

#![warn(missing_docs)]

pub mod command;
pub mod net;
pub mod repl;

pub use command::{parse_command, parse_path, Command, WeightKind};
pub use net::{connect, serve};
pub use repl::run;
