//! The networked modes: `sdd serve` hosts the concurrent multi-session
//! server; `sdd connect` is a thin REPL over the line protocol.

use crate::command::parse_path;
use crate::repl::{load, Source};
use sdd_server::{Client, OpenOptions, Request, Response, Server, ServerConfig, TailConfig};
use sdd_table::{LiveTable, LiveTableConfig, Residency, ShardConfig, ShardedTable, TableStore};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Usage text for `sdd serve`.
pub const SERVE_USAGE: &str = "\
usage: sdd serve [options]
  --addr <host:port>   bind address (default 127.0.0.1:7878)
  --demo <name>        retail | marketing | census  (default retail)
  --rows <n>           row count for the census demo
  --open <file.csv>    serve a CSV file instead of a demo
  --ingest <file.csv>  stream a CSV straight into shards without ever
                       materializing the monolithic table (out-of-core
                       ingest; requires --shards, results identical to
                       --open with the same sharding)
  --tail <n>           serve a live appendable store: new rows arrive via
                       the authenticated `append` request and seal into
                       immutable segments every n rows; the loaded table
                       becomes epoch 1 and every append bumps the epoch
                       (conflicts with --shards/--ingest; --resident and
                       --spill bound the resident sealed segments)
  --threads <n>        connection worker threads (default: cores, min 4)
  --shards <n>         partition the table into n columnar shards
  --resident <m>       keep at most m shards in memory, spilling the rest
                       to disk (requires --shards; results are identical,
                       only memory use changes)
  --spill <dir>        spill directory (default: the system temp dir)
  --residency <p>      eviction policy under the budget: lru (default) or
                       sweep (best for sequential full-table scans)
  --cache <mib>        shared cross-session result-cache budget in MiB
                       (default 64; 0 disables — responses are identical
                       either way; SDD_NO_CACHE=1 also disables)
  --http <port>        also serve the HTTP/1.1 front-end on this port
                       (same host as --addr): POST /v1/line, GET /metrics,
                       GET /healthz — see PROTOCOL.md
  --tokens <file>      bearer-token file (`token tenant [max_sessions]
                       [cache_mib]` per line); makes HTTP auth mandatory
                       and enforces per-tenant quotas
  --max-queue <n>      shed new HTTP connections with 429 + Retry-After
                       while more than n connections wait for a worker
                       (default 1024)
  --idle-timeout <s>   disconnect connections silent for s seconds and
                       evict sessions idle that long (default 300 when
                       --http is on, else off; 0 disables)
  --smoke-scrape       start, drive one HTTP session, scrape and validate
                       /metrics, then exit (CI self-test; requires --http,
                       incompatible with --tokens)
";

/// Usage text for `sdd connect`.
pub const CONNECT_USAGE: &str = "\
usage: sdd connect [host:port]      (default 127.0.0.1:7878)
commands once connected:
  expand [path] (e)    smart drill-down at path (e.g. 0.2; omitted = root)
  star <path> <column> star drill-down on a ? column
  collapse [path] (c)  roll up
  show                 render the current display
  rules                list visible rules as JSON
  refresh              replace estimates with exact counts
  append <v1> <v2> ... [-- <m1> ...]
                       append one row to a live table (values in schema
                       order; measures after `--`); requires `sdd serve
                       --tail` and, under --tokens, the ingest capability
  stats                session + sampling counters
  help (?)             this text
  quit (q)             close the session and exit
";

fn parse_flags(args: &[String]) -> Result<Vec<(String, Option<String>)>, String> {
    let mut out = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .peek()
                .filter(|v| !v.starts_with("--"))
                .map(|v| (*v).clone());
            if value.is_some() {
                it.next();
            }
            out.push((name.to_owned(), value));
        } else {
            return Err(format!("unexpected argument {a:?}"));
        }
    }
    Ok(out)
}

/// Runs `sdd serve` with command-line `args` (everything after `serve`).
pub fn serve(args: &[String], output: &mut impl Write) -> std::io::Result<()> {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut source = Source::Demo("retail".to_owned(), None);
    let mut source_flag: Option<&'static str> = None;
    let mut rows: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut resident: usize = 0;
    let mut spill: Option<String> = None;
    let mut residency: Option<Residency> = None;
    let mut ingest: Option<String> = None;
    let mut tail: Option<usize> = None;
    let mut http_port: Option<u16> = None;
    let mut idle_timeout: Option<u64> = None;
    let mut smoke_scrape = false;
    let mut config = ServerConfig::default();
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            writeln!(output, "error: {e}\n{SERVE_USAGE}")?;
            return Ok(());
        }
    };
    for (name, value) in flags {
        let need = |what: &str| -> Result<String, std::io::Error> {
            value.clone().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("--{name} needs a {what}"),
                )
            })
        };
        match name.as_str() {
            "addr" => addr = need("host:port")?,
            "demo" => {
                source = Source::Demo(need("name")?, None);
                source_flag = Some("--demo");
            }
            "open" => {
                source = Source::Csv(need("path")?);
                source_flag = Some("--open");
            }
            "rows" => {
                rows = Some(need("count")?.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad --rows")
                })?)
            }
            "threads" => {
                config.threads = need("count")?.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad --threads")
                })?
            }
            "shards" => {
                shards = Some(need("count")?.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad --shards")
                })?)
            }
            "resident" => {
                resident = need("count")?.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad --resident")
                })?
            }
            "spill" => spill = Some(need("dir")?),
            "residency" => {
                residency = match need("policy")?.to_ascii_lowercase().as_str() {
                    "lru" => Some(Residency::Lru),
                    "sweep" => Some(Residency::Sweep),
                    other => {
                        writeln!(output, "error: unknown residency {other:?} (lru|sweep)")?;
                        return Ok(());
                    }
                }
            }
            "ingest" => ingest = Some(need("path")?),
            "tail" => {
                tail = Some(need("rows-per-segment")?.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad --tail")
                })?)
            }
            "cache" => {
                let mib: usize = need("MiB")?.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad --cache")
                })?;
                config.engine.cache_bytes = mib << 20;
            }
            "http" => {
                http_port = Some(need("port")?.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad --http")
                })?)
            }
            "tokens" => {
                let path = need("file")?;
                match sdd_server::TenantRegistry::load_token_file(std::path::Path::new(&path)) {
                    Ok(reg) => config.engine.tenants = Arc::new(reg),
                    Err(e) => {
                        writeln!(output, "error: {e}")?;
                        return Ok(());
                    }
                }
            }
            "max-queue" => {
                config.max_queue = need("count")?.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad --max-queue")
                })?
            }
            "idle-timeout" => {
                idle_timeout = Some(need("seconds")?.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad --idle-timeout")
                })?)
            }
            "smoke-scrape" => smoke_scrape = true,
            other => {
                writeln!(output, "error: unknown flag --{other}\n{SERVE_USAGE}")?;
                return Ok(());
            }
        }
    }
    if let (Source::Demo(_, demo_rows), Some(n)) = (&mut source, rows) {
        *demo_rows = Some(n);
    }
    if let (Some(_), Some(flag)) = (&ingest, source_flag) {
        // Two table sources is operator confusion waiting to happen — the
        // other conflicting combinations error loudly, so this one does too.
        writeln!(
            output,
            "error: --ingest conflicts with {flag} (choose one table source)\n{SERVE_USAGE}"
        )?;
        return Ok(());
    }
    if tail.is_some() && ingest.is_some() {
        // `--ingest` streams into a frozen sharded store; a live store has
        // its own ingest path (the `append` request) — the two cannot both
        // own the table.
        writeln!(
            output,
            "error: --tail conflicts with --ingest (a live store ingests via the `append` request)\n{SERVE_USAGE}"
        )?;
        return Ok(());
    }
    if tail.is_some() && shards.is_some() {
        writeln!(
            output,
            "error: --tail conflicts with --shards (a live table manages its own segment layout)\n{SERVE_USAGE}"
        )?;
        return Ok(());
    }
    if smoke_scrape && http_port.is_none() {
        writeln!(
            output,
            "error: --smoke-scrape requires --http (it validates the /metrics endpoint)\n{SERVE_USAGE}"
        )?;
        return Ok(());
    }
    if smoke_scrape && config.engine.tenants.auth_required() {
        // The smoke client scrapes anonymously; with auth mandatory it
        // would only ever prove the 401 path.
        writeln!(
            output,
            "error: --smoke-scrape is incompatible with --tokens\n{SERVE_USAGE}"
        )?;
        return Ok(());
    }
    if resident > 0 && shards.is_none() && tail.is_none() {
        writeln!(
            output,
            "error: --resident requires --shards or --tail\n{SERVE_USAGE}"
        )?;
        return Ok(());
    }
    if spill.is_some() && resident == 0 {
        // Without a budget nothing would ever spill — serving fully
        // resident while the operator expects disk relief is the one
        // silent-OOM combination, so reject it loudly.
        writeln!(
            output,
            "error: --spill requires --resident (the in-memory shard budget to spill against)\n{SERVE_USAGE}"
        )?;
        return Ok(());
    }
    if residency.is_some() && resident == 0 {
        // A policy with no budget never evicts — the operator believes
        // sweep eviction is active when nothing is.
        writeln!(
            output,
            "error: --residency requires --resident (an eviction policy needs a budget to evict against)\n{SERVE_USAGE}"
        )?;
        return Ok(());
    }
    let residency = residency.unwrap_or(Residency::Lru);
    let shard_config = |n: usize| {
        let cfg = if resident > 0 {
            let dir = spill
                .clone()
                .map(std::path::PathBuf::from)
                .unwrap_or_else(std::env::temp_dir);
            ShardConfig::spilling(n, resident, dir)
        } else {
            ShardConfig::in_memory(n)
        };
        cfg.with_residency(residency)
    };
    let layout_of = |sharded: &ShardedTable, streamed: bool| {
        let how = if streamed { "streamed into " } else { "" };
        if resident > 0 {
            format!(
                " ({how}{} shards, ≤ {resident} resident, spilling)",
                sharded.n_shards()
            )
        } else {
            format!(" ({how}{} shards)", sharded.n_shards())
        }
    };
    let (store, layout) = if let Some(seg_rows) = tail {
        // Live serving mode: the loaded table's rows become epoch 1 of an
        // appendable store (byte-identical segments to any other append
        // batching of the same rows); `append` requests grow it from there.
        let table = match load(&source) {
            Ok(t) => t,
            Err(e) => {
                writeln!(output, "error: {e}")?;
                return Ok(());
            }
        };
        let measure_names: Vec<String> = table.measure_names().map(str::to_owned).collect();
        let live_config = LiveTableConfig {
            rows_per_segment: seg_rows,
            resident,
            spill_dir: (resident > 0).then(|| {
                spill
                    .clone()
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(std::env::temp_dir)
            }),
            residency,
        };
        let live = match LiveTable::new(table.schema().clone(), measure_names.clone(), &live_config)
        {
            Ok(l) => l,
            Err(e) => {
                writeln!(output, "error: {e}")?;
                return Ok(());
            }
        };
        if table.n_rows() > 0 {
            let cats: Vec<Vec<&str>> = (0..table.n_rows())
                .map(|r| {
                    (0..table.n_columns())
                        .map(|c| table.value(r as u32, c))
                        .collect()
                })
                .collect();
            let cols: Vec<&[f64]> = match measure_names
                .iter()
                .map(|n| table.measure(n))
                .collect::<Result<_, _>>()
            {
                Ok(cols) => cols,
                Err(e) => {
                    writeln!(output, "error: {e}")?;
                    return Ok(());
                }
            };
            let by_row: Vec<Vec<f64>> = (0..table.n_rows())
                .map(|r| cols.iter().map(|c| c[r]).collect())
                .collect();
            if let Err(e) = live.try_append(&cats, &by_row) {
                writeln!(output, "error: cannot seal the loaded table: {e}")?;
                return Ok(());
            }
        }
        config.engine.tail = Some(TailConfig::default());
        let layout = if resident > 0 {
            format!(
                " (live, epoch {}, sealing every {seg_rows} rows, ≤ {resident} segments resident, spilling)",
                live.epoch()
            )
        } else {
            format!(
                " (live, epoch {}, sealing every {seg_rows} rows)",
                live.epoch()
            )
        };
        (TableStore::from(Arc::new(live)), layout)
    } else {
        match (&ingest, shards) {
            (Some(_), None) => {
                writeln!(
                output,
                "error: --ingest requires --shards (the streaming build's layout)\n{SERVE_USAGE}"
            )?;
                return Ok(());
            }
            (Some(path), Some(n)) => {
                // Out-of-core path: the monolithic table never exists.
                let sharded = match sdd_table::csv::stream_csv_file(path, &[], &shard_config(n)) {
                    Ok(s) => Arc::new(s),
                    Err(e) => {
                        writeln!(output, "error: cannot ingest {path:?}: {e}")?;
                        return Ok(());
                    }
                };
                let layout = layout_of(&sharded, true);
                (TableStore::Sharded(sharded), layout)
            }
            (None, shards) => {
                let table = match load(&source) {
                    Ok(t) => t,
                    Err(e) => {
                        writeln!(output, "error: {e}")?;
                        return Ok(());
                    }
                };
                match shards {
                    None => (TableStore::Whole(table), String::new()),
                    Some(n) => {
                        let sharded = Arc::new(ShardedTable::from_table(&table, &shard_config(n))?);
                        let layout = layout_of(&sharded, false);
                        (TableStore::Sharded(sharded), layout)
                    }
                }
            }
        }
    };
    if let Some(port) = http_port {
        let host = addr.rsplit_once(':').map_or("127.0.0.1", |(h, _)| h);
        config.http_addr = Some(format!("{host}:{port}"));
    }
    // Idle handling defaults on with the HTTP front-end: its sessions are
    // not connection-scoped, so without the sweep they would live forever.
    let idle_secs = idle_timeout.unwrap_or(if http_port.is_some() { 300 } else { 0 });
    if idle_secs > 0 {
        config.read_timeout = Some(std::time::Duration::from_secs(idle_secs));
        config.session_ttl = Some(std::time::Duration::from_secs(idle_secs));
    }
    let server = Server::bind_store(store.clone(), config, addr.as_str())?;
    // Surface whether the cross-session result cache is live — an
    // operator throwing the SDD_NO_CACHE kill switch should see it took.
    let cache_note = match server.engine().cache_capacity() {
        Some(bytes) => format!(", result cache {} MiB", bytes >> 20),
        None => ", result cache off".to_owned(),
    };
    let http_note = match server.http_addr() {
        Some(h) if server.engine().tenants().auth_required() => {
            format!(", http on {h} (bearer auth)")
        }
        Some(h) => format!(", http on {h}"),
        None => String::new(),
    };
    writeln!(
        output,
        "serving {} rows × {} columns{layout}{cache_note}{http_note} on {} — connect with `sdd connect {}`",
        store.n_rows(),
        store.n_columns(),
        server.local_addr()?,
        server.local_addr()?
    )?;
    output.flush()?;
    if smoke_scrape {
        let handle = server.spawn()?;
        let result = run_smoke_scrape(&handle, output);
        handle.shutdown();
        return result;
    }
    server.run()
}

/// Drives one session over the HTTP front-end, scrapes `/metrics`, and
/// checks the exposition is well-formed Prometheus text with every core
/// family present. Used by `--smoke-scrape` (the CI self-test).
fn run_smoke_scrape(
    handle: &sdd_server::ServerHandle,
    output: &mut impl Write,
) -> std::io::Result<()> {
    let bail = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let http_addr = handle
        .http_addr()
        .ok_or_else(|| bail("no HTTP listener".to_owned()))?;
    let mut client = sdd_server::HttpClient::connect(http_addr)?;
    let session = "smoke-scrape".to_owned();
    for req in [
        Request::Open {
            session: session.clone(),
            options: OpenOptions::default(),
        },
        Request::Expand {
            session: session.clone(),
            path: vec![],
        },
        Request::Stats {
            session: session.clone(),
        },
        Request::Close { session },
    ] {
        let (status, body) = client.call_line(None, &req.to_json().to_string())?;
        if status != 200 {
            return Err(bail(format!("smoke request failed ({status}): {body}")));
        }
    }
    let reply = client.request("GET", "/metrics", None, None)?;
    if reply.status != 200 {
        return Err(bail(format!("GET /metrics returned {}", reply.status)));
    }
    let (families, samples) = validate_prometheus(&reply.body_str()).map_err(bail)?;
    writeln!(
        output,
        "smoke-scrape ok: {samples} samples across {families} families"
    )?;
    Ok(())
}

/// Checks Prometheus text-format exposition: every sample's family must
/// carry `# HELP` and `# TYPE` lines, every sample value must parse, and
/// the core server families must all be present. Returns (families,
/// samples) on success.
fn validate_prometheus(text: &str) -> Result<(usize, usize), String> {
    use std::collections::HashSet;
    let mut help: HashSet<&str> = HashSet::new();
    let mut typed: HashSet<&str> = HashSet::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("HELP"), Some(name), Some(_)) => {
                    help.insert(name);
                }
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !matches!(kind, "counter" | "gauge" | "histogram") {
                        return Err(format!("unknown TYPE {kind:?} for {name}"));
                    }
                    typed.insert(name);
                }
                _ => return Err(format!("malformed comment line {line:?}")),
            }
            continue;
        }
        let name_end = line
            .find(['{', ' '])
            .ok_or(format!("malformed sample {line:?}"))?;
        let name = &line[..name_end];
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !help.contains(family) || !typed.contains(family) {
            return Err(format!("sample {name} missing # HELP/# TYPE for {family}"));
        }
        let value = line
            .rsplit(' ')
            .next()
            .filter(|v| v.parse::<f64>().is_ok())
            .ok_or(format!("unparsable value in {line:?}"))?;
        let _ = value;
        samples += 1;
    }
    for family in [
        "sdd_request_latency_seconds",
        "sdd_requests_total",
        "sdd_requests_shed_total",
        "sdd_auth_failures_total",
        "sdd_queue_depth",
        "sdd_sessions",
        "sdd_http_connections",
        "sdd_tcp_connections",
    ] {
        if !typed.contains(family) {
            return Err(format!("family {family} missing from /metrics"));
        }
    }
    Ok((typed.len(), samples))
}

/// Runs the `sdd connect` REPL against `addr`, reading commands from
/// `input` and writing to `output` (I/O-generic for tests).
pub fn connect<R: BufRead, W: Write>(
    addr: &str,
    mut input: R,
    output: &mut W,
) -> std::io::Result<()> {
    let mut client = Client::connect(addr)?;
    let (rows, columns) = match client.call(&Request::TableInfo)? {
        Response::TableInfo { rows, columns } => (rows, columns),
        other => {
            writeln!(output, "unexpected reply: {other:?}")?;
            return Ok(());
        }
    };
    writeln!(
        output,
        "connected to {addr}: {} rows × {} columns ({})",
        rows,
        columns.len(),
        columns.join(", ")
    )?;

    // One session per connect invocation. The pid alone collides across
    // hosts, so mix in a per-process random tag. (Abandoned sessions no
    // longer accumulate server-side — the server reaps a connection's
    // sessions when it drops — but two live clients must still not
    // collide on a name.)
    let tag = {
        use std::hash::{BuildHasher, Hasher};
        std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish()
    };
    let session = format!("cli-{}-{:08x}", std::process::id(), tag as u32);
    match client.call(&Request::Open {
        session: session.clone(),
        options: OpenOptions::default(),
    })? {
        Response::Opened { .. } => writeln!(output, "session {session:?} opened")?,
        Response::Error { message } => {
            writeln!(output, "error: {message}")?;
            return Ok(());
        }
        other => writeln!(output, "unexpected reply: {other:?}")?,
    }

    let mut line = String::new();
    loop {
        write!(output, "> ")?;
        output.flush()?;
        line.clear();
        if input.read_line(&mut line)? == 0 {
            break;
        }
        let mut parts = line.split_whitespace();
        let Some(verb) = parts.next() else { continue };
        let rest: Vec<&str> = parts.collect();
        let request = match verb.to_ascii_lowercase().as_str() {
            "quit" | "exit" | "q" => break,
            "help" | "?" => {
                writeln!(output, "{CONNECT_USAGE}")?;
                continue;
            }
            "expand" | "e" => match parse_path(rest.first().copied().unwrap_or("root")) {
                Ok(path) => Request::Expand {
                    session: session.clone(),
                    path,
                },
                Err(e) => {
                    writeln!(output, "error: {e}")?;
                    continue;
                }
            },
            "star" | "s" if rest.len() == 2 => match parse_path(rest[0]) {
                Ok(path) => Request::Star {
                    session: session.clone(),
                    path,
                    column: rest[1].to_owned(),
                },
                Err(e) => {
                    writeln!(output, "error: {e}")?;
                    continue;
                }
            },
            "collapse" | "c" => match parse_path(rest.first().copied().unwrap_or("root")) {
                Ok(path) => Request::Collapse {
                    session: session.clone(),
                    path,
                },
                Err(e) => {
                    writeln!(output, "error: {e}")?;
                    continue;
                }
            },
            "show" => Request::Render {
                session: session.clone(),
            },
            "rules" => Request::Rules {
                session: session.clone(),
            },
            "refresh" => Request::Refresh {
                session: session.clone(),
            },
            "append" if !rest.is_empty() => {
                let split = rest.iter().position(|p| *p == "--").unwrap_or(rest.len());
                let cats: Vec<String> = rest[..split].iter().map(|s| (*s).to_owned()).collect();
                let measures: Result<Vec<Vec<f64>>, String> = rest[split..]
                    .iter()
                    .skip(1)
                    .map(|m| {
                        m.parse::<f64>()
                            .map(|v| vec![v])
                            .map_err(|_| format!("bad measure value {m:?}"))
                    })
                    .collect();
                match measures {
                    Ok(measures) => Request::Append {
                        rows: vec![cats],
                        measures,
                    },
                    Err(e) => {
                        writeln!(output, "error: {e}")?;
                        continue;
                    }
                }
            }
            "stats" => Request::Stats {
                session: session.clone(),
            },
            _ => {
                writeln!(output, "error: unknown command — try `help`")?;
                continue;
            }
        };
        match client.call(&request)? {
            Response::Rendered { text } => writeln!(output, "{text}")?,
            Response::Expanded { rules } | Response::RuleList { rules } => {
                for r in rules {
                    let ci = if r.exact {
                        "exact".to_owned()
                    } else {
                        format!("[{:.0}, {:.0}]", r.ci.0, r.ci.1)
                    };
                    writeln!(
                        output,
                        "{} {}  count={:.0} ({ci}) weight={:.0}",
                        format_path(&r.path),
                        r.rule,
                        r.count,
                        r.weight
                    )?;
                }
            }
            Response::Stats { stats } => writeln!(output, "{stats:?}")?,
            Response::Appended { epoch, rows } => {
                writeln!(output, "appended — epoch {epoch}, {rows} rows")?
            }
            Response::Collapsed => writeln!(output, "collapsed")?,
            Response::Error { message } => writeln!(output, "error: {message}")?,
            other => writeln!(output, "{other:?}")?,
        }
    }
    let _ = client.call(&Request::Close { session });
    Ok(())
}

fn format_path(path: &[usize]) -> String {
    if path.is_empty() {
        "root".to_owned()
    } else {
        path.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_server::EngineConfig;
    use std::io::Cursor;
    use std::sync::Arc;

    fn spawn_server() -> sdd_server::ServerHandle {
        let table = Arc::new(sdd_datagen::retail(42));
        let config = ServerConfig {
            engine: EngineConfig::default(),
            threads: 4,
            ..ServerConfig::default()
        };
        Server::bind(table, config, "127.0.0.1:0")
            .unwrap()
            .spawn()
            .unwrap()
    }

    #[test]
    fn connect_repl_drives_a_session_end_to_end() {
        let server = spawn_server();
        let addr = server.addr().to_string();
        let mut out = Vec::new();
        let script = "expand\nshow\nstats\nbogus\nquit\n";
        connect(&addr, Cursor::new(script), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("connected to"), "{out}");
        assert!(out.contains("6000 rows × 3 columns"), "{out}");
        assert!(out.contains("Walmart"), "{out}");
        assert!(out.contains("95% CI"), "{out}");
        assert!(out.contains("expansions: 1"), "{out}");
        assert!(out.contains("unknown command"), "{out}");
        server.shutdown();
    }

    #[test]
    fn connect_reports_session_errors_inline() {
        let server = spawn_server();
        let addr = server.addr().to_string();
        let mut out = Vec::new();
        connect(
            &addr,
            Cursor::new("expand 7\nstar 0 NoSuchColumn\nquit\n"),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("no node at path [7]"), "{out}");
        assert!(out.contains("unknown column"), "{out}");
        server.shutdown();
    }

    #[test]
    fn connect_drives_a_session_against_a_spilling_sharded_server() {
        // End-to-end over the sharded tier: a server whose table is split
        // into 8 shards with only 2 resident must serve the same session
        // flow (and the same row/column banner counts) as a monolithic one.
        let table = Arc::new(sdd_datagen::retail(42));
        let sharded = Arc::new(
            ShardedTable::from_table(&table, &ShardConfig::spilling(8, 2, std::env::temp_dir()))
                .unwrap(),
        );
        let server = Server::bind_store(
            TableStore::Sharded(sharded.clone()),
            ServerConfig {
                engine: EngineConfig::default(),
                threads: 4,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap()
        .spawn()
        .unwrap();
        let addr = server.addr().to_string();
        let mut out = Vec::new();
        connect(&addr, Cursor::new("expand\nshow\nstats\nquit\n"), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("6000 rows × 3 columns"), "{out}");
        assert!(out.contains("Walmart"), "{out}");
        assert!(out.contains("expansions: 1"), "{out}");
        assert!(sharded.loads() > 0, "the spill tier was never exercised");
        server.shutdown();
    }

    #[test]
    fn serve_rejects_resident_without_shards() {
        let mut out = Vec::new();
        serve(&["--resident".to_owned(), "2".to_owned()], &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("--resident requires --shards"), "{out}");
    }

    #[test]
    fn serve_rejects_spill_without_resident() {
        // --shards 4 --spill dir with no budget would silently serve fully
        // resident — the one silent-OOM flag combination; it must be loud.
        let mut out = Vec::new();
        serve(
            &[
                "--shards".to_owned(),
                "4".to_owned(),
                "--spill".to_owned(),
                "/tmp".to_owned(),
            ],
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("--spill requires --resident"), "{out}");
    }

    #[test]
    fn serve_rejects_ingest_without_shards() {
        let mut out = Vec::new();
        serve(
            &["--ingest".to_owned(), "whatever.csv".to_owned()],
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("--ingest requires --shards"), "{out}");
    }

    #[test]
    fn serve_rejects_residency_without_resident() {
        let mut out = Vec::new();
        serve(
            &[
                "--shards".to_owned(),
                "4".to_owned(),
                "--residency".to_owned(),
                "sweep".to_owned(),
            ],
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("--residency requires --resident"), "{out}");
    }

    #[test]
    fn serve_rejects_ingest_combined_with_open_or_demo() {
        for (flag, value) in [("--open", "a.csv"), ("--demo", "retail")] {
            let mut out = Vec::new();
            serve(
                &[
                    flag.to_owned(),
                    value.to_owned(),
                    "--ingest".to_owned(),
                    "b.csv".to_owned(),
                    "--shards".to_owned(),
                    "4".to_owned(),
                ],
                &mut out,
            )
            .unwrap();
            let out = String::from_utf8(out).unwrap();
            assert!(
                out.contains(&format!("--ingest conflicts with {flag}")),
                "{out}"
            );
        }
    }

    #[test]
    fn serve_reports_unreadable_ingest_file() {
        let mut out = Vec::new();
        serve(
            &[
                "--ingest".to_owned(),
                "/no/such/file.csv".to_owned(),
                "--shards".to_owned(),
                "4".to_owned(),
            ],
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("cannot ingest"), "{out}");
    }

    #[test]
    fn connect_drives_a_session_against_a_stream_ingested_server() {
        // Full out-of-core path: retail → CSV file → streaming ingest into
        // a spilling sharded store → served session. Same session flow and
        // banner counts as the materialized server.
        let table = sdd_datagen::retail(42);
        let csv_path = std::env::temp_dir().join(format!(
            "sdd-cli-ingest-{}-{:x}.csv",
            std::process::id(),
            &table as *const _ as usize
        ));
        std::fs::write(&csv_path, sdd_table::csv::write_csv(&table)).unwrap();
        let sharded = Arc::new(
            sdd_table::csv::stream_csv_file(
                &csv_path,
                &["Sales"],
                &ShardConfig::spilling(8, 2, std::env::temp_dir()),
            )
            .unwrap(),
        );
        assert_eq!(sharded.spills(), 8, "streaming build must spill per shard");
        let server = Server::bind_store(
            TableStore::Sharded(sharded.clone()),
            ServerConfig {
                engine: EngineConfig::default(),
                threads: 4,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap()
        .spawn()
        .unwrap();
        let addr = server.addr().to_string();
        let mut out = Vec::new();
        connect(&addr, Cursor::new("expand\nshow\nstats\nquit\n"), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("6000 rows × 3 columns"), "{out}");
        assert!(out.contains("Walmart"), "{out}");
        assert!(sharded.loads() > 0, "the spill tier was never exercised");
        server.shutdown();
        let _ = std::fs::remove_file(&csv_path);
    }

    #[test]
    fn serve_rejects_tail_combined_with_shards_or_ingest() {
        let mut out = Vec::new();
        serve(
            &[
                "--tail".to_owned(),
                "512".to_owned(),
                "--shards".to_owned(),
                "4".to_owned(),
            ],
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("--tail conflicts with --shards"), "{out}");

        let mut out = Vec::new();
        serve(
            &[
                "--tail".to_owned(),
                "512".to_owned(),
                "--ingest".to_owned(),
                "b.csv".to_owned(),
            ],
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("--tail conflicts with --ingest"), "{out}");
    }

    #[test]
    fn connect_appends_rows_into_a_live_tail_server() {
        // End-to-end live mode: a server whose table is an appendable live
        // store must accept `append` from the REPL, bump the epoch, and
        // serve drill-downs over the grown table.
        let table = Arc::new(sdd_datagen::retail(42));
        let measure_names: Vec<String> = table.measure_names().map(str::to_owned).collect();
        let live = LiveTable::new(
            table.schema().clone(),
            measure_names.clone(),
            &LiveTableConfig::in_memory(1024),
        )
        .unwrap();
        let cats: Vec<Vec<&str>> = (0..table.n_rows())
            .map(|r| {
                (0..table.n_columns())
                    .map(|c| table.value(r as u32, c))
                    .collect()
            })
            .collect();
        let cols: Vec<&[f64]> = measure_names
            .iter()
            .map(|n| table.measure(n).unwrap())
            .collect();
        let by_row: Vec<Vec<f64>> = (0..table.n_rows())
            .map(|r| cols.iter().map(|c| c[r]).collect())
            .collect();
        live.try_append(&cats, &by_row).unwrap();
        let server = Server::bind_store(
            TableStore::from(Arc::new(live)),
            ServerConfig {
                engine: EngineConfig {
                    tail: Some(sdd_server::TailConfig::default()),
                    ..EngineConfig::default()
                },
                threads: 4,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap()
        .spawn()
        .unwrap();
        let addr = server.addr().to_string();
        let mut out = Vec::new();
        let script =
            "expand\nappend Walmart bread online -- 9.5\nappend Walmart bread -- 9.5\nshow\nquit\n";
        connect(&addr, Cursor::new(script), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("6000 rows × 3 columns"), "{out}");
        assert!(out.contains("appended — epoch 2, 6001 rows"), "{out}");
        // The short row is rejected by the table's arity check, not a hang.
        assert!(out.contains("error:"), "{out}");
        assert!(out.contains("Walmart"), "{out}");
        server.shutdown();
    }

    #[test]
    fn smoke_scrape_drives_http_and_validates_metrics() {
        let mut out = Vec::new();
        serve(
            &[
                "--addr".to_owned(),
                "127.0.0.1:0".to_owned(),
                "--http".to_owned(),
                "0".to_owned(),
                "--smoke-scrape".to_owned(),
            ],
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("http on 127.0.0.1:"), "{out}");
        assert!(out.contains("smoke-scrape ok:"), "{out}");
    }

    #[test]
    fn serve_rejects_smoke_scrape_without_http() {
        let mut out = Vec::new();
        serve(&["--smoke-scrape".to_owned()], &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("--smoke-scrape requires --http"), "{out}");
    }

    #[test]
    fn validate_prometheus_rejects_malformed_expositions() {
        // A family sampled without HELP/TYPE, an unparsable value, and a
        // missing core family must each be caught.
        assert!(validate_prometheus("orphan_total 1\n")
            .unwrap_err()
            .contains("missing # HELP/# TYPE"));
        let bad_value = "# HELP x y\n# TYPE x counter\nx notanumber\n";
        assert!(validate_prometheus(bad_value)
            .unwrap_err()
            .contains("unparsable value"));
        let incomplete = "# HELP sdd_sessions s\n# TYPE sdd_sessions gauge\nsdd_sessions 0\n";
        assert!(validate_prometheus(incomplete)
            .unwrap_err()
            .contains("missing from /metrics"));
    }

    #[test]
    fn serve_rejects_unknown_flags_gracefully() {
        let mut out = Vec::new();
        serve(&["--bogus".to_owned()], &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("unknown flag"), "{out}");
        assert!(out.contains("usage"), "{out}");
    }
}
