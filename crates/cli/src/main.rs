//! `sdd` — the interactive smart drill-down terminal tool.
//!
//! ```sh
//! cargo run -p sdd-cli --release                 # local REPL
//! cargo run -p sdd-cli --release -- serve        # multi-session server
//! cargo run -p sdd-cli --release -- connect      # client REPL
//! sdd> demo retail
//! sdd> expand
//! sdd> star 2 Region
//! ```

use std::io::{stdin, stdout};

const USAGE: &str = "\
usage:
  sdd [--no-simd]         local single-user REPL
  sdd serve [options]     host a concurrent multi-session server
  sdd connect [addr]      connect a REPL to a running server

global options:
  --no-simd               force the scalar scan kernels (also: SDD_NO_SIMD=1)
";

fn main() -> std::io::Result<()> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global flag, honored in every mode (results are bit-identical either
    // way — the switch exists for debugging and A/B timing).
    if let Some(i) = args.iter().position(|a| a == "--no-simd") {
        args.remove(i);
        sdd_core::accel::set_simd_enabled(false);
    }
    let mut stdout = stdout().lock();
    match args.first().map(String::as_str) {
        None => {
            let stdin = stdin().lock();
            sdd_cli::run(stdin, &mut stdout)
        }
        Some("serve") => sdd_cli::serve(&args[1..], &mut stdout),
        Some("connect") => {
            let addr = args.get(1).cloned().unwrap_or("127.0.0.1:7878".to_owned());
            let stdin = stdin().lock();
            sdd_cli::connect(&addr, stdin, &mut stdout)
        }
        Some("help" | "--help" | "-h") => {
            print!(
                "{USAGE}\n{}\n{}",
                sdd_cli::net::SERVE_USAGE,
                sdd_cli::net::CONNECT_USAGE
            );
            Ok(())
        }
        Some(other) => {
            eprintln!("unknown mode {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
