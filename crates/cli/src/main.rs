//! `sdd` — the interactive smart drill-down terminal tool.
//!
//! ```sh
//! cargo run -p sdd-cli --release
//! sdd> demo retail
//! sdd> expand
//! sdd> star 2 Region
//! ```

use std::io::{stdin, stdout};

fn main() -> std::io::Result<()> {
    let stdin = stdin().lock();
    let mut stdout = stdout().lock();
    sdd_cli::run(stdin, &mut stdout)
}
