//! Command parsing for the REPL.

use std::fmt;

/// Which built-in weighting function to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightKind {
    /// `W(r) = Size(r)`.
    Size,
    /// `W(r) = Σ ⌈log2 |c|⌉` over instantiated columns.
    Bits,
    /// `W(r) = max(0, Size(r) − 1)`.
    SizeMinusOne,
}

impl fmt::Display for WeightKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightKind::Size => write!(f, "size"),
            WeightKind::Bits => write!(f, "bits"),
            WeightKind::SizeMinusOne => write!(f, "size-1"),
        }
    }
}

/// One REPL command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Load a CSV file.
    Open(String),
    /// Load a built-in demo dataset (`retail`, `marketing`, `census [rows]`).
    Demo(String, Option<usize>),
    /// Expand the rule at a path (rule drill-down).
    Expand(Vec<usize>),
    /// Star drill-down: path + column name.
    Star(Vec<usize>, String),
    /// Collapse (roll up) the node at a path.
    Collapse(Vec<usize>),
    /// Render the current display.
    Show,
    /// Replace estimates with exact counts (one scan).
    Refresh,
    /// Switch the weighting function (resets expansions).
    Weight(WeightKind),
    /// Change `k` (rules per expansion).
    SetK(usize),
    /// Change the `mw` optimizer parameter.
    SetMw(f64),
    /// Multiply a column's weight contribution (paper §2.2: "expressing a
    /// higher preference for a column"). Resets expansions.
    Favor(String, f64),
    /// Zero a column's weight contribution ("expressing indifference").
    Ignore(String),
    /// Print sampling-layer statistics.
    Stats,
    /// Print the help text.
    Help,
    /// Exit.
    Quit,
}

/// Parses a node path: `root` or `-` → `[]`; `0.2.1` → `[0, 2, 1]`.
pub fn parse_path(s: &str) -> Result<Vec<usize>, String> {
    if s.is_empty() || s == "root" || s == "-" {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|part| {
            part.parse::<usize>()
                .map_err(|_| format!("bad path segment {part:?} (expected e.g. `root` or `0.2`)"))
        })
        .collect()
}

/// Parses one input line into a [`Command`].
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut parts = line.split_whitespace();
    let Some(verb) = parts.next() else {
        return Err("empty command".to_owned());
    };
    let rest: Vec<&str> = parts.collect();
    let need = |n: usize, usage: &str| -> Result<(), String> {
        if rest.len() == n {
            Ok(())
        } else {
            Err(format!("usage: {usage}"))
        }
    };

    match verb.to_ascii_lowercase().as_str() {
        "open" => {
            need(1, "open <file.csv>")?;
            Ok(Command::Open(rest[0].to_owned()))
        }
        "demo" => match rest.as_slice() {
            [name] => Ok(Command::Demo((*name).to_owned(), None)),
            [name, rows] => {
                let n = rows
                    .parse()
                    .map_err(|_| format!("bad row count {rows:?}"))?;
                Ok(Command::Demo((*name).to_owned(), Some(n)))
            }
            _ => Err("usage: demo <retail|marketing|census> [rows]".to_owned()),
        },
        "expand" | "e" => {
            let path = parse_path(rest.first().copied().unwrap_or("root"))?;
            Ok(Command::Expand(path))
        }
        "star" | "s" => {
            need(2, "star <path> <column>")?;
            Ok(Command::Star(parse_path(rest[0])?, rest[1].to_owned()))
        }
        "collapse" | "c" => {
            let path = parse_path(rest.first().copied().unwrap_or("root"))?;
            Ok(Command::Collapse(path))
        }
        "show" => Ok(Command::Show),
        "refresh" => Ok(Command::Refresh),
        "weight" | "w" => {
            need(1, "weight <size|bits|size-1>")?;
            let kind = match rest[0].to_ascii_lowercase().as_str() {
                "size" => WeightKind::Size,
                "bits" => WeightKind::Bits,
                "size-1" | "size-minus-one" => WeightKind::SizeMinusOne,
                other => return Err(format!("unknown weight {other:?} (size|bits|size-1)")),
            };
            Ok(Command::Weight(kind))
        }
        "k" => {
            need(1, "k <n>")?;
            let k: usize = rest[0]
                .parse()
                .map_err(|_| format!("bad k {:?}", rest[0]))?;
            if k == 0 {
                return Err("k must be positive".to_owned());
            }
            Ok(Command::SetK(k))
        }
        "mw" => {
            need(1, "mw <weight>")?;
            let mw: f64 = rest[0]
                .parse()
                .map_err(|_| format!("bad mw {:?}", rest[0]))?;
            if mw <= 0.0 || mw.is_nan() {
                return Err("mw must be positive".to_owned());
            }
            Ok(Command::SetMw(mw))
        }
        "favor" => match rest.as_slice() {
            [col] => Ok(Command::Favor((*col).to_owned(), 3.0)),
            [col, factor] => {
                let f: f64 = factor
                    .parse()
                    .map_err(|_| format!("bad factor {factor:?}"))?;
                if f <= 0.0 || f.is_nan() {
                    return Err("factor must be positive".to_owned());
                }
                Ok(Command::Favor((*col).to_owned(), f))
            }
            _ => Err("usage: favor <column> [factor]".to_owned()),
        },
        "ignore" => {
            need(1, "ignore <column>")?;
            Ok(Command::Ignore(rest[0].to_owned()))
        }
        "stats" => Ok(Command::Stats),
        "help" | "?" => Ok(Command::Help),
        "quit" | "exit" | "q" => Ok(Command::Quit),
        other => Err(format!("unknown command {other:?} — try `help`")),
    }
}

/// The help text.
pub const HELP: &str = "\
commands:
  open <file.csv>                 load a CSV table
  demo <retail|marketing|census> [rows]
                                  load a built-in synthetic dataset
  expand [path]   (e)             smart drill-down on the rule at path
                                  (path like 0.2; `root` or omitted = top)
  star <path> <column>  (s)       star drill-down on a ? column
  collapse [path] (c)             roll up an expanded rule
  show                            print the current display
  refresh                         replace estimates with exact counts
  weight <size|bits|size-1> (w)   switch weighting (resets expansions)
  favor <column> [factor]         boost a column's weight (default 3x)
  ignore <column>                 zero a column's weight
  k <n>                           rules per expansion
  mw <w>                          optimizer max-weight parameter
  stats                           sampling-layer statistics
  help (?)                        this text
  quit (q)                        exit
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paths() {
        assert_eq!(parse_path("root").unwrap(), Vec::<usize>::new());
        assert_eq!(parse_path("").unwrap(), Vec::<usize>::new());
        assert_eq!(parse_path("0").unwrap(), vec![0]);
        assert_eq!(parse_path("0.2.1").unwrap(), vec![0, 2, 1]);
        assert!(parse_path("0.x").is_err());
    }

    #[test]
    fn parses_expand_variants() {
        assert_eq!(parse_command("expand").unwrap(), Command::Expand(vec![]));
        assert_eq!(parse_command("e 0.1").unwrap(), Command::Expand(vec![0, 1]));
        assert_eq!(
            parse_command("EXPAND root").unwrap(),
            Command::Expand(vec![])
        );
    }

    #[test]
    fn parses_star_and_collapse() {
        assert_eq!(
            parse_command("star 0 Region").unwrap(),
            Command::Star(vec![0], "Region".to_owned())
        );
        assert_eq!(parse_command("c 1").unwrap(), Command::Collapse(vec![1]));
        assert!(parse_command("star 0").is_err());
    }

    #[test]
    fn parses_settings() {
        assert_eq!(
            parse_command("weight bits").unwrap(),
            Command::Weight(WeightKind::Bits)
        );
        assert_eq!(
            parse_command("w size-1").unwrap(),
            Command::Weight(WeightKind::SizeMinusOne)
        );
        assert_eq!(parse_command("k 5").unwrap(), Command::SetK(5));
        assert_eq!(parse_command("mw 4.5").unwrap(), Command::SetMw(4.5));
        assert!(parse_command("k 0").is_err());
        assert!(parse_command("mw -1").is_err());
        assert!(parse_command("weight entropy").is_err());
    }

    #[test]
    fn parses_dataset_commands() {
        assert_eq!(
            parse_command("open data.csv").unwrap(),
            Command::Open("data.csv".to_owned())
        );
        assert_eq!(
            parse_command("demo census 100000").unwrap(),
            Command::Demo("census".to_owned(), Some(100_000))
        );
        assert_eq!(
            parse_command("demo retail").unwrap(),
            Command::Demo("retail".to_owned(), None)
        );
    }

    #[test]
    fn rejects_unknown_and_empty() {
        assert!(parse_command("").is_err());
        assert!(parse_command("frobnicate").is_err());
    }

    #[test]
    fn quit_aliases() {
        for s in ["quit", "exit", "q"] {
            assert_eq!(parse_command(s).unwrap(), Command::Quit);
        }
    }
}
