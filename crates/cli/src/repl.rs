//! The REPL loop, generic over input/output for testability.

use crate::command::{parse_command, Command, WeightKind, HELP};
use sdd_core::{BitsWeight, SizeMinusOne, SizeWeight, WeightFn};
use sdd_explorer::{Explorer, ExplorerConfig};
use sdd_table::Table;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// What dataset to (re)load next.
pub(crate) enum Source {
    /// A CSV file on disk.
    Csv(String),
    /// A built-in demo dataset (name, optional row count).
    Demo(String, Option<usize>),
}

enum Outcome {
    Quit,
    Reload(Source),
}

/// Runs the REPL until the input ends or the user quits.
///
/// `input` lines are commands (see [`crate::command::HELP`]); all output is
/// written to `output`. Designed so tests can drive a whole session from a
/// string.
pub fn run<R: BufRead, W: Write>(mut input: R, output: &mut W) -> std::io::Result<()> {
    writeln!(output, "smart drill-down explorer — `help` for commands")?;
    let mut pending: Option<Source> = None;

    loop {
        let source = match pending.take() {
            Some(s) => s,
            None => match read_source(&mut input, output)? {
                Some(s) => s,
                None => return Ok(()),
            },
        };
        let table = match load(&source) {
            Ok(t) => t,
            Err(e) => {
                writeln!(output, "error: {e}")?;
                continue;
            }
        };
        writeln!(
            output,
            "loaded {} rows × {} columns",
            table.n_rows(),
            table.n_columns()
        )?;
        match explore(&table, &mut input, output)? {
            Outcome::Quit => return Ok(()),
            Outcome::Reload(next) => pending = Some(next),
        }
    }
}

/// Reads commands until one provides a dataset (or input ends / quits).
fn read_source<R: BufRead, W: Write>(
    input: &mut R,
    output: &mut W,
) -> std::io::Result<Option<Source>> {
    let mut line = String::new();
    loop {
        write!(output, "> ")?;
        output.flush()?;
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_command(trimmed) {
            Ok(Command::Open(path)) => return Ok(Some(Source::Csv(path))),
            Ok(Command::Demo(name, rows)) => return Ok(Some(Source::Demo(name, rows))),
            Ok(Command::Quit) => return Ok(None),
            Ok(Command::Help) => writeln!(output, "{HELP}")?,
            Ok(_) => writeln!(
                output,
                "load a dataset first: `open <csv>` or `demo retail`"
            )?,
            Err(e) => writeln!(output, "error: {e}")?,
        }
    }
}

pub(crate) fn load(source: &Source) -> Result<Arc<Table>, String> {
    let table = match source {
        Source::Csv(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            sdd_table::csv::read_csv(&text).map_err(|e| e.to_string())?
        }
        Source::Demo(name, rows) => match name.to_ascii_lowercase().as_str() {
            "retail" => sdd_datagen::retail(42),
            "marketing" => sdd_datagen::marketing(2016).project_first_columns(7),
            "census" => sdd_datagen::census(rows.unwrap_or(100_000), 1990).project_first_columns(7),
            other => return Err(format!("unknown demo {other:?} (retail|marketing|census)")),
        },
    };
    Ok(Arc::new(table))
}

/// The active weighting: a base kind plus per-column multipliers (the
/// paper's §2.2 favor/ignore adjustments). Monotone and non-negative for
/// any non-negative multipliers.
struct AdjustedWeight {
    base: WeightKind,
    multipliers: Vec<f64>,
}

impl WeightFn for AdjustedWeight {
    fn weight(&self, rule: &sdd_core::Rule, table: &Table) -> f64 {
        let sum: f64 = rule
            .instantiated_columns()
            .map(|c| {
                let base = match self.base {
                    WeightKind::Size | WeightKind::SizeMinusOne => 1.0,
                    WeightKind::Bits => (table.cardinality(c).max(1) as f64).log2().ceil(),
                };
                base * self.multipliers.get(c).copied().unwrap_or(1.0)
            })
            .sum();
        match self.base {
            WeightKind::SizeMinusOne => (sum - 1.0).max(0.0),
            _ => sum,
        }
    }

    fn name(&self) -> &str {
        "adjusted"
    }
}

fn make_weight(kind: WeightKind, multipliers: &[f64]) -> Box<dyn WeightFn> {
    if multipliers.iter().all(|&m| (m - 1.0).abs() < 1e-12) {
        match kind {
            WeightKind::Size => Box::new(SizeWeight),
            WeightKind::Bits => Box::new(BitsWeight),
            WeightKind::SizeMinusOne => Box::new(SizeMinusOne),
        }
    } else {
        Box::new(AdjustedWeight {
            base: kind,
            multipliers: multipliers.to_vec(),
        })
    }
}

/// The exploration loop over one loaded table.
fn explore<R: BufRead, W: Write>(
    table: &Arc<Table>,
    input: &mut R,
    output: &mut W,
) -> std::io::Result<Outcome> {
    let mut weight_kind = WeightKind::Size;
    let mut multipliers = vec![1.0f64; table.n_columns()];
    let mut config = ExplorerConfig {
        k: 4,
        ..ExplorerConfig::default()
    };
    let mut explorer = Explorer::new(
        table.clone(),
        make_weight(weight_kind, &multipliers),
        config.clone(),
    );
    writeln!(output, "{}", explorer.render())?;

    let mut line = String::new();
    loop {
        write!(output, "> ")?;
        output.flush()?;
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(Outcome::Quit);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let command = match parse_command(trimmed) {
            Ok(c) => c,
            Err(e) => {
                writeln!(output, "error: {e}")?;
                continue;
            }
        };
        match command {
            Command::Quit => return Ok(Outcome::Quit),
            Command::Open(path) => return Ok(Outcome::Reload(Source::Csv(path))),
            Command::Demo(name, rows) => return Ok(Outcome::Reload(Source::Demo(name, rows))),
            Command::Help => writeln!(output, "{HELP}")?,
            Command::Show => writeln!(output, "{}", explorer.render())?,
            Command::Stats => {
                writeln!(output, "handler: {:?}", explorer.handler_stats())?;
                writeln!(output, "explorer: {:?}", explorer.stats)?;
            }
            Command::Refresh => match explorer.try_refresh_exact_counts() {
                Ok(()) => writeln!(output, "counts refreshed (exact)\n{}", explorer.render())?,
                Err(e) => writeln!(output, "error: {e}")?,
            },
            Command::Expand(path) => match explorer.expand(&path) {
                Ok(_) => writeln!(output, "{}", explorer.render())?,
                Err(e) => writeln!(output, "error: {e}")?,
            },
            Command::Star(path, column) => match table.schema().index_of(&column) {
                Ok(col) => match explorer.expand_star(&path, col) {
                    Ok(_) => writeln!(output, "{}", explorer.render())?,
                    Err(e) => writeln!(output, "error: {e}")?,
                },
                Err(e) => writeln!(output, "error: {e}")?,
            },
            Command::Collapse(path) => match explorer.collapse(&path) {
                Ok(()) => writeln!(output, "{}", explorer.render())?,
                Err(e) => writeln!(output, "error: {e}")?,
            },
            Command::Weight(kind) => {
                weight_kind = kind;
                explorer = Explorer::new(
                    table.clone(),
                    make_weight(weight_kind, &multipliers),
                    config.clone(),
                );
                writeln!(
                    output,
                    "weighting = {kind}; display reset\n{}",
                    explorer.render()
                )?;
            }
            Command::Favor(column, factor) => match table.schema().index_of(&column) {
                Ok(col) => {
                    multipliers[col] = factor;
                    explorer = Explorer::new(
                        table.clone(),
                        make_weight(weight_kind, &multipliers),
                        config.clone(),
                    );
                    writeln!(
                        output,
                        "column {column:?} weighted ×{factor}; display reset"
                    )?;
                }
                Err(e) => writeln!(output, "error: {e}")?,
            },
            Command::Ignore(column) => match table.schema().index_of(&column) {
                Ok(col) => {
                    multipliers[col] = 0.0;
                    explorer = Explorer::new(
                        table.clone(),
                        make_weight(weight_kind, &multipliers),
                        config.clone(),
                    );
                    writeln!(output, "column {column:?} ignored; display reset")?;
                }
                Err(e) => writeln!(output, "error: {e}")?,
            },
            Command::SetK(k) => {
                config.k = k;
                explorer = Explorer::new(
                    table.clone(),
                    make_weight(weight_kind, &multipliers),
                    config.clone(),
                );
                writeln!(output, "k = {k}; display reset")?;
            }
            Command::SetMw(mw) => {
                config.max_weight = Some(mw);
                explorer = Explorer::new(
                    table.clone(),
                    make_weight(weight_kind, &multipliers),
                    config.clone(),
                );
                writeln!(output, "mw = {mw}; display reset")?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn drive(script: &str) -> String {
        let mut out = Vec::new();
        run(Cursor::new(script), &mut out).expect("io on buffers cannot fail");
        String::from_utf8(out).expect("utf8 output")
    }

    #[test]
    fn quit_immediately() {
        let out = drive("quit\n");
        assert!(out.contains("help"));
    }

    #[test]
    fn help_before_loading() {
        let out = drive("help\nquit\n");
        assert!(out.contains("smart drill-down on the rule at path"));
    }

    #[test]
    fn demo_retail_walkthrough() {
        let out = drive("demo retail\nexpand\nexpand 2\nshow\nquit\n");
        assert!(out.contains("loaded 6000 rows × 3 columns"), "{out}");
        assert!(out.contains("Walmart"), "{out}");
        assert!(out.contains("comforters"), "{out}");
        // Nested expansion produced depth-2 rows.
        assert!(out.lines().any(|l| l.starts_with(". . ")), "{out}");
    }

    #[test]
    fn star_command_by_column_name() {
        let out = drive("demo retail\nexpand\nstar 2 Region\nquit\n");
        // Expanding the Walmart rule's Region: CA-1/WA-5 surface.
        assert!(out.contains("CA-1") || out.contains("WA-5"), "{out}");
    }

    #[test]
    fn refresh_marks_counts_exact() {
        let out = drive("demo retail\nexpand\nrefresh\nquit\n");
        assert!(out.contains("counts refreshed"), "{out}");
        assert!(out.contains("exact"), "{out}");
    }

    #[test]
    fn weight_switch_resets_display() {
        let out = drive("demo retail\nexpand\nweight bits\nquit\n");
        assert!(out.contains("weighting = bits"), "{out}");
    }

    #[test]
    fn bad_commands_are_reported_not_fatal() {
        let out = drive("demo retail\nfrobnicate\nexpand 9.9\nstar 0 NoSuchColumn\nquit\n");
        assert!(out.contains("unknown command"), "{out}");
        assert!(out.contains("no node at path"), "{out}");
        assert!(out.contains("unknown column"), "{out}");
    }

    #[test]
    fn ignore_column_removes_it_from_rules() {
        // Ignoring Store: zero weight for Store values, so the summary must
        // not instantiate Store anywhere.
        let out = drive("demo retail\nignore Store\nexpand\nquit\n");
        assert!(out.contains("ignored"), "{out}");
        let after = out.split("ignored").nth(1).unwrap();
        assert!(!after.contains("Walmart"), "{out}");
        assert!(
            after.contains("comforters") || after.contains("MA-3"),
            "{out}"
        );
    }

    #[test]
    fn favor_column_steers_rules_toward_it() {
        let out = drive("demo retail\nfavor Region 10\nexpand\nquit\n");
        assert!(out.contains("weighted ×10"), "{out}");
        // Region-instantiating rules dominate after the boost.
        let after = out.split("weighted").nth(1).unwrap();
        assert!(after.contains("MA-3") || after.contains("Region-"), "{out}");
    }

    #[test]
    fn favor_unknown_column_reports_error() {
        let out = drive("demo retail\nfavor Price\nquit\n");
        assert!(out.contains("unknown column"), "{out}");
    }

    #[test]
    fn open_missing_file_reports_error() {
        let out = drive("open /no/such/file.csv\nquit\n");
        assert!(out.contains("cannot read"), "{out}");
    }

    #[test]
    fn eof_terminates_cleanly() {
        let out = drive("demo retail\n");
        assert!(out.contains("loaded 6000"));
    }

    #[test]
    fn open_real_csv_file_end_to_end() {
        let dir = std::env::temp_dir();
        let path = dir.join("sdd_cli_test_store.csv");
        std::fs::write(
            &path,
            "Store,Product\nWalmart,cookies\nWalmart,cookies\nTarget,bikes\n",
        )
        .unwrap();
        let script = format!("open {}\nexpand\nquit\n", path.display());
        let out = drive(&script);
        std::fs::remove_file(&path).ok();
        assert!(out.contains("loaded 3 rows × 2 columns"), "{out}");
        assert!(out.contains("cookies"), "{out}");
    }

    #[test]
    fn reload_switches_datasets_mid_session() {
        let out = drive("demo retail\nexpand\ndemo marketing\nquit\n");
        assert!(out.contains("loaded 6000 rows × 3 columns"), "{out}");
        assert!(out.contains("loaded 9409 rows × 7 columns"), "{out}");
    }
}
