use crate::view::{RowId, TableView};
use crate::{Dictionary, Schema, TableError};
use std::sync::Arc;

/// An immutable, dictionary-encoded, column-major relational table.
///
/// This is the paper's denormalized table `D` (§2.1): every column is
/// categorical (bucketize numeric data first, see [`crate::bucketize`]), and
/// cell values are stored as dense `u32` dictionary codes for cache-friendly
/// scans. Optional *measure* columns hold raw `f64` values for the `Sum`
/// aggregate of §6.3 — they are never instantiated by rules.
///
/// Dictionaries are held by `Arc`, so derived tables that keep the same
/// code space — shard segments, [`Table::gather_rows`] outputs,
/// [`Table::header_only`] headers — share one dictionary allocation with
/// their source instead of deep-cloning it per copy.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    dicts: Vec<Arc<Dictionary>>,
    cols: Vec<Vec<u32>>,
    measures: Vec<(String, Vec<f64>)>,
    n_rows: usize,
}

impl Table {
    /// Starts building a table with the given schema.
    pub fn builder(schema: Schema) -> TableBuilder {
        TableBuilder::new(schema)
    }

    /// Assembles a table from pre-validated parts (the sharded substrate's
    /// segment loader). Callers guarantee that every code is within its
    /// dictionary and all lengths equal `n_rows`.
    pub(crate) fn from_parts(
        schema: Schema,
        dicts: Vec<Arc<Dictionary>>,
        cols: Vec<Vec<u32>>,
        measures: Vec<(String, Vec<f64>)>,
        n_rows: usize,
    ) -> Table {
        debug_assert_eq!(cols.len(), schema.n_columns());
        debug_assert!(cols.iter().all(|c| c.len() == n_rows));
        debug_assert!(measures.iter().all(|(_, v)| v.len() == n_rows));
        Table {
            schema,
            dicts,
            cols,
            measures,
            n_rows,
        }
    }

    /// Convenience constructor from string rows.
    ///
    /// ```
    /// use sdd_table::{Schema, Table};
    /// let t = Table::from_rows(
    ///     Schema::new(["Store", "Product"]).unwrap(),
    ///     &[&["Walmart", "cookies"], &["Target", "bicycles"]],
    /// ).unwrap();
    /// assert_eq!(t.n_rows(), 2);
    /// ```
    pub fn from_rows<R: AsRef<[S]>, S: AsRef<str>>(
        schema: Schema,
        rows: &[R],
    ) -> Result<Self, TableError> {
        let mut b = TableBuilder::new(schema);
        for row in rows {
            b.push_row(row.as_ref())?;
        }
        b.build()
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows, the paper's `|T|`.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of categorical columns, the paper's `|C|`.
    pub fn n_columns(&self) -> usize {
        self.schema.n_columns()
    }

    /// The dictionary of column `col`. Panics if out of range.
    pub fn dictionary(&self, col: usize) -> &Dictionary {
        self.dicts[col].as_ref()
    }

    /// The shared handle of column `col`'s dictionary. Tables derived
    /// without re-interning (shard segments, gathers, headers) return
    /// pointer-identical handles to their source's — the Arc-sharing
    /// invariant the substrate property suite pins down.
    pub fn dictionary_arc(&self, col: usize) -> &Arc<Dictionary> {
        &self.dicts[col]
    }

    /// All dictionary handles, in column order.
    pub(crate) fn dictionaries(&self) -> &[Arc<Dictionary>] {
        &self.dicts
    }

    /// Number of distinct values in column `col` (the paper's `|c|`).
    pub fn cardinality(&self, col: usize) -> usize {
        self.dicts[col].len()
    }

    /// The dictionary code at (`row`, `col`). Panics if out of range.
    #[inline]
    pub fn code(&self, row: RowId, col: usize) -> u32 {
        self.cols[col][row as usize]
    }

    /// The raw code column `col` (one entry per row).
    #[inline]
    pub fn column(&self, col: usize) -> &[u32] {
        &self.cols[col]
    }

    /// The string value at (`row`, `col`).
    pub fn value(&self, row: RowId, col: usize) -> &str {
        self.dicts[col]
            .value_of(self.code(row, col))
            .expect("code out of dictionary range: corrupt table")
    }

    /// Copies the codes of `row` into `buf` (resized to `n_columns`).
    pub fn row_codes(&self, row: RowId, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|c| c[row as usize]));
    }

    /// Names of the measure columns, in declaration order.
    pub fn measure_names(&self) -> impl Iterator<Item = &str> {
        self.measures.iter().map(|(n, _)| n.as_str())
    }

    /// The values of measure column `name` (one per row).
    pub fn measure(&self, name: &str) -> Result<&[f64], TableError> {
        self.measures
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
            .ok_or_else(|| TableError::UnknownMeasure(name.to_owned()))
    }

    /// A view over all rows with unit weights (plain `Count` semantics).
    pub fn view(&self) -> TableView<'_> {
        TableView::all(self)
    }

    /// A view over all rows weighted by measure column `name`
    /// (`Sum` semantics, §6.3 of the paper).
    pub fn view_weighted_by(&self, name: &str) -> Result<TableView<'_>, TableError> {
        let w = self.measure(name)?.to_vec();
        Ok(TableView::with_rows_and_weights(
            self,
            (0..self.n_rows as u32).collect(),
            w,
        ))
    }

    /// Materializes a new `Table` keeping only the first `n` columns —
    /// the paper's display convention ("we restrict the tables to the first
    /// 7 columns", §5). Measures are carried over.
    pub fn project_first_columns(&self, n: usize) -> Table {
        let n = n.min(self.n_columns());
        let schema = Schema::new((0..n).map(|c| self.schema.column_name(c).to_owned()))
            .expect("subset of unique names stays unique");
        let mut b = TableBuilder::new(schema);
        b.reserve(self.n_rows);
        let mut row: Vec<&str> = Vec::with_capacity(n);
        for r in 0..self.n_rows as RowId {
            row.clear();
            for c in 0..n {
                row.push(self.value(r, c));
            }
            b.push_row(&row).expect("arity preserved");
        }
        for (name, vals) in &self.measures {
            b.add_measure(name.clone(), vals.clone())
                .expect("measure names stay unique");
        }
        b.build().expect("lengths preserved")
    }

    /// Materializes a new `Table` containing only `rows` (in the given
    /// order) while **preserving this table's dictionaries verbatim**: the
    /// gathered table has the same schema, the same code space, and the
    /// same per-column cardinalities as `self`.
    ///
    /// This is the bit-compatibility primitive behind the sharded substrate
    /// ([`crate::ShardedTable::gather_rows`] and the sampling layer's
    /// materialized samples): any computation over the gathered rows sees
    /// exactly the code sequence, weights, and cardinalities the same rows
    /// would produce in `self`, so rule weights, candidate layouts, and
    /// float accumulation orders are identical. Contrast
    /// [`Table::select_rows`], which re-interns values and drops unused
    /// dictionary entries.
    pub fn gather_rows(&self, rows: &[RowId]) -> Table {
        Table::gather_multi(&[(self, rows)])
    }

    /// [`Table::gather_rows`] over multiple source tables sharing one code
    /// space: concatenates the gathers in part order. All sources must have
    /// identical schemas and per-column cardinalities (the caller guarantees
    /// they were gathered from one logical table); dictionaries are taken
    /// from the first part. Panics when `parts` is empty or the sources
    /// disagree. Used by the sampling layer's Combine over materialized
    /// sharded samples.
    pub fn gather_multi(parts: &[(&Table, &[RowId])]) -> Table {
        let (first, _) = parts.first().expect("gather_multi needs at least one part");
        let n_cols = first.n_columns();
        let total: usize = parts.iter().map(|(_, rows)| rows.len()).sum();
        let mut cols: Vec<Vec<u32>> = vec![Vec::with_capacity(total); n_cols];
        for (src, rows) in parts {
            assert_eq!(src.schema, first.schema, "gather_multi sources disagree");
            for (c, col) in cols.iter_mut().enumerate() {
                assert_eq!(
                    src.dicts[c].len(),
                    first.dicts[c].len(),
                    "gather_multi sources must share one code space"
                );
                let codes = src.column(c);
                col.extend(rows.iter().map(|&r| codes[r as usize]));
            }
        }
        let measures = first
            .measures
            .iter()
            .enumerate()
            .map(|(mi, (name, _))| {
                let mut vals = Vec::with_capacity(total);
                for (src, rows) in parts {
                    let (_, src_vals) = &src.measures[mi];
                    vals.extend(rows.iter().map(|&r| src_vals[r as usize]));
                }
                (name.clone(), vals)
            })
            .collect();
        Table {
            schema: first.schema.clone(),
            dicts: first.dicts.clone(),
            cols,
            measures,
            n_rows: total,
        }
    }

    /// A zero-row table carrying this table's schema, dictionaries, and
    /// measure names — the always-in-memory "header" of a sharded table.
    ///
    /// Weight functions, rule construction/display, and schema lookups all
    /// consume only this metadata, so a header stands in for the full table
    /// wherever no row is touched. **A header is not scannable**: direct
    /// row access panics, but the common `for row in 0..table.n_rows()`
    /// idiom sees zero rows and silently computes over nothing — callers
    /// holding a `TableStore` must dispatch row scans on the store (the
    /// sharded compute paths in `sdd-core`), never on the header.
    pub fn header_only(&self) -> Table {
        Table {
            schema: self.schema.clone(),
            dicts: self.dicts.clone(),
            cols: vec![Vec::new(); self.n_columns()],
            measures: self
                .measures
                .iter()
                .map(|(n, _)| (n.clone(), Vec::new()))
                .collect(),
            n_rows: 0,
        }
    }

    /// Materializes a new `Table` containing only `rows` (in the given
    /// order). Dictionaries are shared logically (codes are re-interned, so
    /// unused values are dropped). Measures are carried over.
    pub fn select_rows(&self, rows: &[RowId]) -> Table {
        let mut b = TableBuilder::new(self.schema.clone());
        let mut buf: Vec<&str> = Vec::with_capacity(self.n_columns());
        for &r in rows {
            buf.clear();
            for c in 0..self.n_columns() {
                buf.push(self.value(r, c));
            }
            b.push_row(&buf).expect("arity preserved by construction");
        }
        for (name, vals) in &self.measures {
            let picked: Vec<f64> = rows.iter().map(|&r| vals[r as usize]).collect();
            b.add_measure(name.clone(), picked)
                .expect("measure length matches selected rows");
        }
        b.build().expect("row count consistent by construction")
    }
}

/// Incremental builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    dicts: Vec<Dictionary>,
    cols: Vec<Vec<u32>>,
    measures: Vec<(String, Vec<f64>)>,
    n_rows: usize,
}

impl TableBuilder {
    /// Creates a builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        let n = schema.n_columns();
        Self {
            schema,
            dicts: vec![Dictionary::new(); n],
            cols: vec![Vec::new(); n],
            measures: Vec::new(),
            n_rows: 0,
        }
    }

    /// Reserves capacity for `additional` more rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.cols {
            c.reserve(additional);
        }
    }

    /// Appends one row of string values.
    pub fn push_row<S: AsRef<str>>(&mut self, row: &[S]) -> Result<(), TableError> {
        if row.len() != self.schema.n_columns() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.n_columns(),
                got: row.len(),
            });
        }
        for (c, v) in row.iter().enumerate() {
            let code = self.dicts[c].intern(v.as_ref());
            self.cols[c].push(code);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Attaches a numeric measure column (length checked at [`build`]).
    ///
    /// [`build`]: TableBuilder::build
    pub fn add_measure(
        &mut self,
        name: impl Into<String>,
        values: Vec<f64>,
    ) -> Result<(), TableError> {
        let name = name.into();
        if self.schema.index_of(&name).is_ok() || self.measures.iter().any(|(n, _)| *n == name) {
            return Err(TableError::DuplicateColumn(name));
        }
        self.measures.push((name, values));
        Ok(())
    }

    /// Finalizes the table, validating measure lengths.
    pub fn build(self) -> Result<Table, TableError> {
        for (name, vals) in &self.measures {
            if vals.len() != self.n_rows {
                return Err(TableError::ArityMismatch {
                    expected: self.n_rows,
                    got: vals.len(),
                })
                .map_err(|_| {
                    TableError::UnknownMeasure(format!(
                        "measure {name:?} has {} values for {} rows",
                        vals.len(),
                        self.n_rows
                    ))
                });
            }
        }
        Ok(Table {
            schema: self.schema,
            dicts: self.dicts.into_iter().map(Arc::new).collect(),
            cols: self.cols,
            measures: self.measures,
            n_rows: self.n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_table() -> Table {
        Table::from_rows(
            Schema::new(["Store", "Product", "Region"]).unwrap(),
            &[
                &["Walmart", "cookies", "CA-1"],
                &["Target", "bicycles", "MA-3"],
                &["Walmart", "comforters", "MA-3"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_and_reads_back_values() {
        let t = store_table();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_columns(), 3);
        assert_eq!(t.value(0, 0), "Walmart");
        assert_eq!(t.value(1, 1), "bicycles");
        assert_eq!(t.value(2, 2), "MA-3");
    }

    #[test]
    fn codes_are_shared_within_a_column() {
        let t = store_table();
        assert_eq!(t.code(0, 0), t.code(2, 0)); // both Walmart
        assert_ne!(t.code(0, 0), t.code(1, 0));
        assert_eq!(t.cardinality(0), 2);
        assert_eq!(t.cardinality(2), 2);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut b = TableBuilder::new(Schema::new(["a", "b"]).unwrap());
        let err = b.push_row(&["only-one"]).unwrap_err();
        assert_eq!(
            err,
            TableError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn measures_roundtrip_and_validate() {
        let mut b = TableBuilder::new(Schema::new(["Store"]).unwrap());
        b.push_row(&["Walmart"]).unwrap();
        b.push_row(&["Target"]).unwrap();
        b.add_measure("Sales", vec![10.0, 20.0]).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.measure("Sales").unwrap(), &[10.0, 20.0]);
        assert!(t.measure("Profit").is_err());
        assert_eq!(t.measure_names().collect::<Vec<_>>(), vec!["Sales"]);
    }

    #[test]
    fn measure_length_mismatch_fails_build() {
        let mut b = TableBuilder::new(Schema::new(["Store"]).unwrap());
        b.push_row(&["Walmart"]).unwrap();
        b.add_measure("Sales", vec![1.0, 2.0]).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn measure_name_clashing_with_column_rejected() {
        let mut b = TableBuilder::new(Schema::new(["Store"]).unwrap());
        assert!(b.add_measure("Store", vec![]).is_err());
    }

    #[test]
    fn select_rows_preserves_values_and_measures() {
        let mut b = TableBuilder::new(Schema::new(["Store", "Product"]).unwrap());
        b.push_row(&["Walmart", "cookies"]).unwrap();
        b.push_row(&["Target", "bicycles"]).unwrap();
        b.push_row(&["Walmart", "comforters"]).unwrap();
        b.add_measure("Sales", vec![1.0, 2.0, 3.0]).unwrap();
        let t = b.build().unwrap();

        let sub = t.select_rows(&[2, 0]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.value(0, 0), "Walmart");
        assert_eq!(sub.value(0, 1), "comforters");
        assert_eq!(sub.value(1, 1), "cookies");
        assert_eq!(sub.measure("Sales").unwrap(), &[3.0, 1.0]);
        // Unused dictionary entries are dropped on re-intern.
        assert_eq!(sub.cardinality(0), 1);
    }

    #[test]
    fn project_first_columns_keeps_prefix_and_measures() {
        let mut b = TableBuilder::new(Schema::new(["a", "b", "c"]).unwrap());
        b.push_row(&["1", "2", "3"]).unwrap();
        b.push_row(&["4", "5", "6"]).unwrap();
        b.add_measure("m", vec![9.0, 8.0]).unwrap();
        let t = b.build().unwrap();
        let p = t.project_first_columns(2);
        assert_eq!(p.n_columns(), 2);
        assert_eq!(p.n_rows(), 2);
        assert_eq!(p.value(1, 1), "5");
        assert_eq!(p.measure("m").unwrap(), &[9.0, 8.0]);
        // Over-asking is clamped.
        assert_eq!(t.project_first_columns(99).n_columns(), 3);
    }

    #[test]
    fn row_codes_fills_buffer() {
        let t = store_table();
        let mut buf = Vec::new();
        t.row_codes(1, &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf[0], t.code(1, 0));
    }

    #[test]
    fn zero_row_table_is_fine() {
        let t = Table::from_rows(Schema::new(["a"]).unwrap(), &[] as &[&[&str]]).unwrap();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.cardinality(0), 0);
    }
}
