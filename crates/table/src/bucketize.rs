//! Bucketization of numeric attributes (paper §3 and §6.2).
//!
//! The smart drill-down framework assumes every column is categorical, so
//! numeric columns are turned into labelled buckets before ingest — exactly
//! what the paper's Marketing/Census datasets did ("age ... divided into
//! buckets (18−24, 25−34 and so on)"). Two strategies are provided:
//!
//! * [`equal_width`] — fixed-width intervals over `[min, max]`,
//! * [`equal_depth`] — quantile buckets holding ~equal row counts, which is
//!   the better default for skewed measures.

use crate::TableError;

/// A half-open numeric interval `[lo, hi)` (last bucket is closed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bucket).
    pub hi: f64,
}

impl Bucket {
    /// Human-readable label, e.g. `"[18, 25)"`.
    pub fn label(&self) -> String {
        format!("[{}, {})", trim(self.lo), trim(self.hi))
    }
}

fn trim(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_owned()
    }
}

/// The result of bucketizing a numeric column.
#[derive(Debug, Clone)]
pub struct Bucketized {
    /// Bucket edges in ascending order.
    pub buckets: Vec<Bucket>,
    /// Per-row bucket index into `buckets`.
    pub assignment: Vec<usize>,
    /// Per-row label (what you feed into [`crate::TableBuilder::push_row`]).
    pub labels: Vec<String>,
}

/// Bucketizes into `n` equal-width intervals spanning `[min, max]`.
///
/// Errors if `values` is empty, `n == 0`, or any value is non-finite.
pub fn equal_width(values: &[f64], n: usize) -> Result<Bucketized, TableError> {
    validate(values, n)?;
    let (min, max) = min_max(values);
    let width = if max > min {
        (max - min) / n as f64
    } else {
        1.0
    };
    let buckets: Vec<Bucket> = (0..n)
        .map(|i| Bucket {
            lo: min + width * i as f64,
            hi: if i + 1 == n {
                max.max(min + 1.0)
            } else {
                min + width * (i + 1) as f64
            },
        })
        .collect();
    let assignment: Vec<usize> = values
        .iter()
        .map(|&v| {
            let idx = ((v - min) / width) as usize;
            idx.min(n - 1)
        })
        .collect();
    Ok(finish(buckets, assignment))
}

/// Bucketizes into `n` quantile (equal-depth) buckets.
///
/// Bucket edges are value cut-points; ties never straddle buckets (all equal
/// values land in the same bucket), so the result may contain fewer than `n`
/// distinct buckets for heavily tied data.
pub fn equal_depth(values: &[f64], n: usize) -> Result<Bucketized, TableError> {
    validate(values, n)?;
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));

    // Candidate cut-points at the n-quantiles, deduplicated.
    let mut edges: Vec<f64> = Vec::with_capacity(n + 1);
    edges.push(sorted[0]);
    for q in 1..n {
        let idx = (q * sorted.len()) / n;
        let v = sorted[idx.min(sorted.len() - 1)];
        if v > *edges.last().expect("non-empty") {
            edges.push(v);
        }
    }
    let last = sorted[sorted.len() - 1];
    // Final (exclusive) upper edge just past the max so max lands inside.
    let hi_edge = if last > *edges.last().expect("non-empty") {
        last
    } else {
        *edges.last().expect("non-empty")
    };
    edges.push(hi_edge + 1.0);

    let buckets: Vec<Bucket> = edges
        .windows(2)
        .map(|w| Bucket { lo: w[0], hi: w[1] })
        .collect();
    let assignment: Vec<usize> = values
        .iter()
        .map(|&v| {
            // Last bucket whose lo <= v.
            match edges[..edges.len() - 1].binary_search_by(|e| e.partial_cmp(&v).expect("finite"))
            {
                Ok(mut i) => {
                    // For runs of equal edges pick the first matching bucket.
                    while i > 0 && edges[i - 1] == v {
                        i -= 1;
                    }
                    i
                }
                Err(i) => i.saturating_sub(1),
            }
        })
        .collect();
    Ok(finish(buckets, assignment))
}

/// A nested bucketization of one numeric column: level 0 is coarsest, each
/// finer level splits every bucket of the previous level into `branching`
/// equal-depth sub-buckets. Feeding the per-level label columns into a
/// table (e.g. `Age.L0`, `Age.L1`) gives the optimizer **range rules**
/// (§2.1/§6.2 of the paper): instantiating only `Age.L0` is a wide range,
/// `Age.L1` a narrow one. Levels are functionally dependent (a fine bucket
/// determines its coarse bucket), so weight only the finest level you care
/// about — or use per-column weights ∝ log(branching) per level.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Per level: per-row bucket index (global within the level).
    pub assignments: Vec<Vec<usize>>,
    /// Per level: per-row range label.
    pub labels: Vec<Vec<String>>,
    /// Per level: the bucket ranges, indexed by bucket id.
    pub buckets: Vec<Vec<Bucket>>,
}

impl Hierarchy {
    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.assignments.len()
    }
}

/// Builds a `depth`-level nested bucketization with the given branching
/// factor (so level ℓ has at most `branching^(ℓ+1)` buckets). Nesting is
/// guaranteed by construction: sub-buckets are equal-depth splits *within*
/// each parent bucket.
pub fn hierarchy(values: &[f64], branching: usize, depth: usize) -> Result<Hierarchy, TableError> {
    validate(values, branching)?;
    if depth == 0 {
        return Err(TableError::ParseNumber(
            "0 hierarchy levels requested".to_owned(),
        ));
    }
    let n = values.len();
    let mut out = Hierarchy {
        assignments: Vec::with_capacity(depth),
        labels: Vec::with_capacity(depth),
        buckets: Vec::with_capacity(depth),
    };
    // Row groups of the previous level (level -1 = everything).
    let mut groups: Vec<Vec<usize>> = vec![(0..n).collect()];

    for _level in 0..depth {
        let mut assignment = vec![0usize; n];
        let mut buckets: Vec<Bucket> = Vec::new();
        let mut next_groups: Vec<Vec<usize>> = Vec::new();
        for group in &groups {
            let group_values: Vec<f64> = group.iter().map(|&i| values[i]).collect();
            let b = equal_depth(&group_values, branching)?;
            let base = buckets.len();
            buckets.extend(b.buckets.iter().copied());
            let mut sub: Vec<Vec<usize>> = vec![Vec::new(); b.buckets.len()];
            for (pos, &row) in group.iter().enumerate() {
                let local = b.assignment[pos];
                assignment[row] = base + local;
                sub[local].push(row);
            }
            next_groups.extend(sub.into_iter().filter(|g| !g.is_empty()));
        }
        let labels = assignment.iter().map(|&a| buckets[a].label()).collect();
        out.assignments.push(assignment);
        out.labels.push(labels);
        out.buckets.push(buckets);
        groups = next_groups;
    }
    Ok(out)
}

fn validate(values: &[f64], n: usize) -> Result<(), TableError> {
    if values.is_empty() {
        return Err(TableError::Empty);
    }
    if n == 0 {
        return Err(TableError::ParseNumber("0 buckets requested".to_owned()));
    }
    if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
        return Err(TableError::ParseNumber(format!("{bad}")));
    }
    Ok(())
}

fn min_max(values: &[f64]) -> (f64, f64) {
    values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        })
}

fn finish(buckets: Vec<Bucket>, assignment: Vec<usize>) -> Bucketized {
    let labels = assignment.iter().map(|&i| buckets[i].label()).collect();
    Bucketized {
        buckets,
        assignment,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_splits_range() {
        let vals = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let b = equal_width(&vals, 2).unwrap();
        assert_eq!(b.buckets.len(), 2);
        assert_eq!(b.assignment[..5], [0, 0, 0, 0, 0]);
        assert_eq!(b.assignment[5..], [1, 1, 1, 1, 1]);
    }

    #[test]
    fn equal_width_max_value_lands_in_last_bucket() {
        let vals = [0.0, 10.0];
        let b = equal_width(&vals, 4).unwrap();
        assert_eq!(b.assignment, vec![0, 3]);
    }

    #[test]
    fn equal_width_constant_column() {
        let vals = [5.0; 8];
        let b = equal_width(&vals, 3).unwrap();
        assert!(b.assignment.iter().all(|&i| i == 0));
    }

    #[test]
    fn labels_are_readable() {
        let vals = [18.0, 24.0, 65.0];
        let b = equal_width(&vals, 2).unwrap();
        assert!(b.labels[0].starts_with("[18"));
    }

    #[test]
    fn equal_depth_balances_counts() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = equal_depth(&vals, 4).unwrap();
        let mut counts = vec![0usize; b.buckets.len()];
        for &a in &b.assignment {
            counts[a] += 1;
        }
        assert_eq!(counts, vec![25, 25, 25, 25]);
    }

    #[test]
    fn equal_depth_skewed_data_keeps_ties_together() {
        // 90 copies of 1.0 and ten larger values: all the 1.0s must share one bucket.
        let mut vals = vec![1.0f64; 90];
        vals.extend((0..10).map(|i| 10.0 + i as f64));
        let b = equal_depth(&vals, 4).unwrap();
        let first = b.assignment[0];
        assert!(b.assignment[..90].iter().all(|&a| a == first));
    }

    #[test]
    fn equal_depth_assignment_respects_edges() {
        let vals = [3.0, 1.0, 2.0, 4.0, 5.0, 6.0];
        let b = equal_depth(&vals, 3).unwrap();
        for (&v, &a) in vals.iter().zip(&b.assignment) {
            let bucket = b.buckets[a];
            assert!(v >= bucket.lo && v < bucket.hi, "{v} not in {bucket:?}");
        }
    }

    #[test]
    fn hierarchy_levels_nest() {
        let vals: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let h = hierarchy(&vals, 4, 3).unwrap();
        assert_eq!(h.depth(), 3);
        // Rows in the same fine bucket share all coarser buckets.
        for level in 1..3 {
            for i in 0..64 {
                for j in 0..64 {
                    if h.assignments[level][i] == h.assignments[level][j] {
                        assert_eq!(
                            h.assignments[level - 1][i],
                            h.assignments[level - 1][j],
                            "rows {i},{j} share a level-{level} bucket but not its parent"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hierarchy_level_sizes_grow_with_branching() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = hierarchy(&vals, 2, 3).unwrap();
        assert_eq!(h.buckets[0].len(), 2);
        assert_eq!(h.buckets[1].len(), 4);
        assert_eq!(h.buckets[2].len(), 8);
    }

    #[test]
    fn hierarchy_values_stay_in_their_ranges() {
        let vals = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 0.0];
        let h = hierarchy(&vals, 2, 2).unwrap();
        for level in 0..2 {
            for (i, &v) in vals.iter().enumerate() {
                let b = h.buckets[level][h.assignments[level][i]];
                assert!(v >= b.lo && v < b.hi, "level {level}: {v} not in {b:?}");
            }
        }
    }

    #[test]
    fn hierarchy_handles_ties() {
        let vals = [1.0; 10];
        let h = hierarchy(&vals, 3, 2).unwrap();
        let first = h.assignments[1][0];
        assert!(h.assignments[1].iter().all(|&a| a == first));
    }

    #[test]
    fn hierarchy_rejects_zero_depth() {
        assert!(hierarchy(&[1.0], 2, 0).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(equal_width(&[], 3).is_err());
        assert!(equal_depth(&[], 3).is_err());
    }

    #[test]
    fn zero_buckets_rejected() {
        assert!(equal_width(&[1.0], 0).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        assert!(equal_width(&[1.0, f64::NAN], 2).is_err());
        assert!(equal_depth(&[f64::INFINITY], 2).is_err());
    }
}
