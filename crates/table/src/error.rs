use std::fmt;

/// Errors produced by table construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row had a different number of fields than the schema.
    ArityMismatch {
        /// Number of columns the schema declares.
        expected: usize,
        /// Number of fields the offending row carried.
        got: usize,
    },
    /// A column name was referenced that does not exist in the schema.
    UnknownColumn(String),
    /// A measure column was referenced that does not exist.
    UnknownMeasure(String),
    /// Two columns (or measures) were declared with the same name.
    DuplicateColumn(String),
    /// The CSV input was structurally malformed.
    Csv {
        /// 1-based line where the problem was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A value could not be parsed as a number where one was required.
    ParseNumber(String),
    /// The table (or input) was empty where data was required.
    Empty,
    /// An I/O failure during streaming ingest or spill (message of the
    /// underlying [`std::io::Error`]; kept as a string so the error stays
    /// `Clone + Eq`).
    Io(String),
    /// A spill file failed structural validation (bad magic, truncated,
    /// shape mismatch, out-of-range local code). Distinct from [`Io`]:
    /// the bytes were readable but are not a valid segment — the file was
    /// damaged after it was written.
    ///
    /// [`Io`]: TableError::Io
    Corrupt(String),
    /// A streaming shard build received a different number of rows than it
    /// declared up front (the span layout is a function of the total).
    RowCount {
        /// Rows the builder was created for.
        declared: usize,
        /// Rows actually pushed.
        got: usize,
    },
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e.to_string())
    }
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            TableError::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            TableError::UnknownMeasure(name) => write!(f, "unknown measure column: {name:?}"),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column name: {name:?}"),
            TableError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            TableError::ParseNumber(s) => write!(f, "cannot parse {s:?} as a number"),
            TableError::Empty => write!(f, "input is empty"),
            TableError::Io(message) => write!(f, "i/o error: {message}"),
            TableError::Corrupt(message) => write!(f, "corrupt spill file: {message}"),
            TableError::RowCount { declared, got } => {
                write!(f, "row count mismatch: declared {declared} rows, got {got}")
            }
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TableError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("2"));
        assert!(TableError::UnknownColumn("x".into())
            .to_string()
            .contains("x"));
        assert!(TableError::Csv {
            line: 7,
            message: "bad quote".into()
        }
        .to_string()
        .contains("line 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TableError::Empty);
    }
}
