use crate::TableError;

/// Metadata for one categorical column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    name: String,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }

    /// The column's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// An ordered list of categorical columns. The paper's set `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema from column names, rejecting duplicates.
    pub fn new<I, S>(names: I) -> Result<Self, TableError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let columns: Vec<ColumnDef> = names
            .into_iter()
            .map(|n| ColumnDef::new(n.into()))
            .collect();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name() == c.name()) {
                return Err(TableError::DuplicateColumn(c.name().to_owned()));
            }
        }
        Ok(Self { columns })
    }

    /// Number of columns, the paper's `|C|`.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// The name of column `idx`. Panics if out of range.
    pub fn column_name(&self, idx: usize) -> &str {
        self.columns[idx].name()
    }

    /// Resolves a column name to its index.
    pub fn index_of(&self, name: &str) -> Result<usize, TableError> {
        self.columns
            .iter()
            .position(|c| c.name() == name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_resolves_names() {
        let s = Schema::new(["Store", "Product", "Region"]).unwrap();
        assert_eq!(s.n_columns(), 3);
        assert_eq!(s.index_of("Product").unwrap(), 1);
        assert_eq!(s.column_name(2), "Region");
        assert!(matches!(
            s.index_of("Sales"),
            Err(TableError::UnknownColumn(_))
        ));
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(["a", "b", "a"]).unwrap_err();
        assert_eq!(err, TableError::DuplicateColumn("a".to_owned()));
    }

    #[test]
    fn empty_schema_is_allowed() {
        // A zero-column schema is degenerate but legal; the core crate guards
        // against running drill-downs over it.
        let s = Schema::new(Vec::<String>::new()).unwrap();
        assert_eq!(s.n_columns(), 0);
    }
}
