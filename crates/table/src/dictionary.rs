use rustc_hash::FxHashMap;

/// A per-column dictionary interning string values to dense `u32` codes.
///
/// Codes are assigned in first-seen order starting at `0`. The smart
/// drill-down algorithms operate exclusively on codes; strings are only
/// touched at ingest and display time.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<Box<str>>,
    index: FxHashMap<Box<str>, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its code (allocating a new one if unseen).
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.index.get(value) {
            return code;
        }
        let code = u32::try_from(self.values.len())
            .expect("dictionary overflow: > u32::MAX distinct values");
        let boxed: Box<str> = value.into();
        self.values.push(boxed.clone());
        self.index.insert(boxed, code);
        code
    }

    /// Returns the code for `value` if it has been interned.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Returns the string for `code`, or `None` if out of range.
    pub fn value_of(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(|s| &**s)
    }

    /// Number of distinct values interned. This is the `|c|` of the paper's
    /// Bits weighting function.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Approximate heap bytes held by this dictionary (string storage plus
    /// the intern index) — the resident-memory proxy the ingest bench uses
    /// to compare streaming against materialize-then-shard builds.
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self.values.iter().map(|v| v.len()).sum();
        // Each value is stored twice (value vec + index key) and the index
        // additionally carries a code and hash-bucket overhead.
        2 * strings
            + self.values.len() * (2 * std::mem::size_of::<Box<str>>() + std::mem::size_of::<u64>())
    }

    /// Discards every code `>= len`, restoring the dictionary to an earlier
    /// intern point. Supports the live-table append rollback: a failed
    /// append must not leak interned values (and thus column cardinality)
    /// into later snapshots, or a from-scratch rebuild of the same rows
    /// would diverge from the grown table.
    pub fn truncate(&mut self, len: usize) {
        for v in self.values.drain(len.min(self.values.len())..) {
            self.index.remove(&v);
        }
    }

    /// Iterates `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, &**v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes_in_first_seen_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("c"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn lookup_roundtrips() {
        let mut d = Dictionary::new();
        let code = d.intern("Walmart");
        assert_eq!(d.value_of(code), Some("Walmart"));
        assert_eq!(d.code_of("Walmart"), Some(code));
        assert_eq!(d.code_of("Target"), None);
        assert_eq!(d.value_of(99), None);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.value_of(0), None);
    }

    #[test]
    fn iter_yields_code_order() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn distinguishes_similar_strings() {
        let mut d = Dictionary::new();
        let a = d.intern("10");
        let b = d.intern("10 ");
        let c = d.intern("010");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
