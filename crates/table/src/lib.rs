//! # sdd-table
//!
//! The relational-table substrate for the smart drill-down reproduction
//! (Joglekar, Garcia-Molina, Parameswaran — ICDE 2016).
//!
//! The paper assumes a single denormalized table `D` with categorical columns
//! (numerical columns bucketized beforehand, §3/§6.2 of the paper). This crate
//! provides exactly that substrate, built from scratch:
//!
//! * [`Dictionary`] — per-column string ⇄ `u32` code interning,
//! * [`Schema`] / [`ColumnDef`] — column metadata,
//! * [`Table`] / [`TableBuilder`] — immutable dictionary-encoded columnar
//!   storage with optional numeric *measure* columns (for the `Sum` aggregate
//!   of §6.3),
//! * [`TableView`] — a borrowed subset of rows with optional per-tuple
//!   weights (the mechanism that lets one algorithm code path serve Count,
//!   Sum, and scale-weighted samples),
//! * [`stats`] — per-column frequency statistics used by weighting functions
//!   and the `minSS` guidance,
//! * [`csv`] — a small self-contained CSV reader/writer,
//! * [`bucketize`] — equi-width / equi-depth bucketization of numeric data,
//! * [`shard`] — the larger-than-memory tier: [`ShardedTable`] partitions
//!   rows into fixed columnar shard segments (optionally spilled to disk
//!   under a resident-shard budget with LRU or sweep-aware eviction,
//!   [`Residency`]), [`ShardBuilder`] streams rows in without materializing
//!   the monolithic table, [`ShardedView`] presents the familiar
//!   positional view surface over it, and [`TableStore`] lets the session
//!   stack hold either storage form behind one handle. The shard layout and
//!   spill round-trip are deterministic, so sharded scans reproduce the
//!   monolithic results bit-for-bit (see the module docs for the contract).
//!
//! Everything is deterministic; "disk scans" in the sampling layer are
//! modelled as full passes over a [`Table`] (or, in the sharded tier, real
//! per-segment spill reads).

#![warn(missing_docs)]

pub mod bucketize;
pub mod csv;
mod dictionary;
mod error;
mod schema;
pub mod shard;
pub mod stats;
mod table;
mod view;

pub use dictionary::Dictionary;
pub use error::TableError;
pub use schema::{ColumnDef, Schema};
pub use shard::{
    LiveSnapshot, LiveStore, LiveTable, LiveTableConfig, LocalCodes, RawColumn, RawSegment,
    Residency, SegmentData, ShardBuilder, ShardConfig, ShardRun, ShardSegment, ShardedTable,
    ShardedView, TableStore,
};
pub use table::{Table, TableBuilder};
pub use view::{chunk_spans, OwnedTableView, RowId, TableView, ViewChunk, WeightedRow};
