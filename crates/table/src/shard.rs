//! Sharded columnar storage for larger-than-memory drill-down.
//!
//! A [`ShardedTable`] partitions a table's rows into **fixed, deterministic
//! contiguous segments** (the shard *layout* is [`chunk_spans`] of the row
//! count and shard count — a pure function of both, never of machine or
//! thread count). Each shard holds its own dictionary-coded column slices:
//!
//! * **resident form** — a [`ShardSegment`]: a small [`Table`] whose columns
//!   are the shard's rows in the **global** code space (codes identical to
//!   the monolithic table's), so any scan over a segment performs exactly
//!   the operations the same rows would produce in the monolithic table;
//! * **spill form** — an optional on-disk file per shard, written once at
//!   construction. The spill format (`SDDSHRD2`) is local-dictionary coded:
//!   per column a `remap` array lists the global codes in first-appearance
//!   order within the shard, and the rows store local codes at the
//!   narrowest byte width (1/2/4) that fits the shard-local cardinality; a
//!   per-column offset table in the header lets readers fetch individual
//!   columns with positioned range reads. Loading remaps local → global, so
//!   a spill → load round-trip reproduces the resident segment bit-for-bit.
//!   The spill coding is also directly scannable **without** decoding: a
//!   [`RawSegment`] exposes each column's `remap` and packed [`LocalCodes`],
//!   and `sdd-core`'s pushdown scans translate predicates into local code
//!   space and run over the packed bytes (see [`SegmentData`],
//!   [`ShardedTable::segment_data`], [`ShardedTable::read_columns`]).
//!
//! Residency is governed by a **resident-shard budget**: at most that many
//! segments are cached at once (segments are immutable, so eviction can
//! never change a result — a reload decodes identical bytes). Two eviction
//! policies exist ([`Residency`]): `Lru` (default, for random/skewed
//! access) and `Sweep` (evict most-recently-used — the right policy for
//! cyclic sequential shard sweeps, which are LRU's worst case). Callers
//! hold segments by `Arc`; a held segment is **pinned** — it stays in the
//! cache, counts against the budget, and is never evicted, so the resident
//! count honestly tracks decoded-segment memory
//! (`resident_count ≤ budget + pinned`, never budget + unbounded in-flight
//! copies).
//!
//! Construction comes in two forms: [`ShardedTable::from_table`] slices an
//! already-materialized [`Table`], and [`ShardBuilder`] **streams** rows in
//! without ever materializing the monolithic table — sealing and spilling
//! each segment the moment its span fills, so ingest peak memory is one
//! segment plus dictionaries (see the builder docs for why the two builds
//! are bit-identical).
//!
//! ## Determinism contract
//!
//! The shard layout partitions `[0, n_rows)` in order, so iterating shards
//! in index order visits rows in exactly the monolithic row order. Every
//! sharded compute path in `sdd-core` exploits this: scans accumulate
//! shard-after-shard into shared accumulators (identical float operation
//! order → bit-identical results to the monolithic path, for **any** shard
//! count and **any** resident budget), and integer partials may additionally
//! fan out per shard because integer addition is associative. Eviction and
//! reload affect only *when* bytes are in memory, never which bytes.
//!
//! Measure columns stay fully resident inside the [`ShardedTable`] (8 bytes
//! per row per measure); only the dictionary-coded categorical columns
//! shard and spill.

use crate::view::chunk_spans;
use crate::{Dictionary, RowId, Schema, Table, TableError};
use rustc_hash::FxHashMap;
use std::io::{self, Read, Write};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which resident segment a full cache evicts. Results never depend on the
/// policy (segments are immutable); only spill traffic does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Residency {
    /// Evict the least-recently-used segment. The safe default for random
    /// or skewed access (drill-downs revisiting hot shards).
    #[default]
    Lru,
    /// Evict the **most**-recently-used unpinned segment. The sequential
    /// shard sweep (`for i in 0..n_shards`) is LRU's documented worst case:
    /// under a budget of `k`, LRU evicts exactly the segment the cyclic
    /// scan needs next and misses on every access, while Sweep retains a
    /// stable prefix of `k - 1` segments that hit on every subsequent pass.
    Sweep,
}

/// Configuration of a [`ShardedTable`].
#[derive(Debug, Clone, Default)]
pub struct ShardConfig {
    /// Number of shards (clamped to ≥ 1; also clamped to the row count by
    /// the layout, which never creates empty shards for non-empty tables).
    pub shards: usize,
    /// Resident-shard budget: at most this many segments cached in memory.
    /// `0` means unlimited (everything stays resident and no spill files
    /// are ever read back). A non-zero budget requires `spill_dir`.
    pub resident: usize,
    /// Directory for spill files. Each `ShardedTable` creates a unique
    /// subdirectory inside it and removes that subdirectory on drop.
    pub spill_dir: Option<PathBuf>,
    /// Eviction policy under the resident budget (default [`Residency::Lru`];
    /// pick [`Residency::Sweep`] for workloads dominated by sequential
    /// full-table scans).
    pub residency: Residency,
}

impl ShardConfig {
    /// A fully-resident layout with `shards` shards (no spill).
    pub fn in_memory(shards: usize) -> Self {
        Self {
            shards,
            resident: 0,
            spill_dir: None,
            residency: Residency::Lru,
        }
    }

    /// A spilling layout: `shards` shards, at most `resident` of them in
    /// memory, spill files under `dir`.
    pub fn spilling(shards: usize, resident: usize, dir: impl Into<PathBuf>) -> Self {
        Self {
            shards,
            resident: resident.max(1),
            spill_dir: Some(dir.into()),
            residency: Residency::Lru,
        }
    }

    /// The same layout with `residency` as the eviction policy.
    pub fn with_residency(mut self, residency: Residency) -> Self {
        self.residency = residency;
        self
    }
}

/// One resident shard: the shard's rows as a small [`Table`] in the
/// **global** code space (same dictionaries, same cardinalities, same codes
/// as the monolithic table), plus the global row span it covers.
#[derive(Debug)]
pub struct ShardSegment {
    span: Range<usize>,
    table: Table,
}

impl ShardSegment {
    /// The global row range `[start, end)` this segment holds.
    pub fn span(&self) -> Range<usize> {
        self.span.clone()
    }

    /// The segment's rows as a table (row `i` is global row
    /// `span().start + i`).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The shard-local column slice of column `c`, in global codes.
    pub fn col(&self, c: usize) -> &[u32] {
        self.table.column(c)
    }

    /// Maps a global row id inside [`ShardSegment::span`] to the local row
    /// index. Panics (in debug) when the row is outside the span.
    #[inline]
    pub fn local(&self, row: RowId) -> usize {
        debug_assert!(self.span.contains(&(row as usize)), "row outside span");
        row as usize - self.span.start
    }
}

/// One spilled column's packed local codes at their stored byte width —
/// exactly the bytes on disk, decoded to the matching integer type (the
/// 1-byte form is the raw file bytes verbatim). Scans over these touch
/// 1/4th–1/2 the memory a decoded global-code (`u32`) scan would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalCodes {
    /// Shard-local cardinality ≤ 256: one byte per row.
    W1(Vec<u8>),
    /// Shard-local cardinality ≤ 65 536: two bytes per row.
    W2(Vec<u16>),
    /// Anything larger: four bytes per row.
    W4(Vec<u32>),
}

impl LocalCodes {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            LocalCodes::W1(v) => v.len(),
            LocalCodes::W2(v) => v.len(),
            LocalCodes::W4(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored byte width (1, 2, or 4).
    pub fn width(&self) -> usize {
        match self {
            LocalCodes::W1(_) => 1,
            LocalCodes::W2(_) => 2,
            LocalCodes::W4(_) => 4,
        }
    }

    /// The local code at row `i`, widened to `u32`.
    #[inline]
    pub fn at(&self, i: usize) -> u32 {
        match self {
            LocalCodes::W1(v) => v[i] as u32,
            LocalCodes::W2(v) => v[i] as u32,
            LocalCodes::W4(v) => v[i],
        }
    }
}

/// One spilled column in its on-disk coding: the `remap` array (local →
/// global codes, in first-appearance order within the shard) plus the rows
/// as packed [`LocalCodes`]. This is the raw-segment access path the
/// spill-tier predicate pushdown scans — no global-code materialization.
///
/// Loaded columns are validated once (every local code `< remap.len()`),
/// so `remap[code as usize]` indexing never faults afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawColumn {
    remap: Vec<u32>,
    codes: LocalCodes,
}

impl RawColumn {
    /// Local → global code map (the shard-local dictionary image), in
    /// first-appearance order. `remap.len()` is the shard-local
    /// cardinality.
    pub fn remap(&self) -> &[u32] {
        &self.remap
    }

    /// The rows as packed local codes.
    pub fn codes(&self) -> &LocalCodes {
        &self.codes
    }

    /// Shard-local cardinality (`remap().len()`).
    pub fn cardinality(&self) -> usize {
        self.remap.len()
    }

    /// The local code for global code `g`, or `None` when `g` never occurs
    /// in this shard — the pushdown zero-count test: a predicate whose
    /// value is absent from `remap` covers no row of the shard, so the
    /// whole shard can be skipped without touching its rows.
    pub fn local_of_global(&self, g: u32) -> Option<u32> {
        self.remap.iter().position(|&x| x == g).map(|p| p as u32)
    }

    /// The global code at row `i`.
    #[inline]
    pub fn global_at(&self, i: usize) -> u32 {
        self.remap[self.codes.at(i) as usize]
    }
}

/// One shard in spill coding: the global row span plus every column as a
/// [`RawColumn`]. The raw twin of [`ShardSegment`].
#[derive(Debug)]
pub struct RawSegment {
    span: Range<usize>,
    cols: Vec<RawColumn>,
}

impl RawSegment {
    /// The global row range `[start, end)` this segment holds.
    pub fn span(&self) -> Range<usize> {
        self.span.clone()
    }

    /// Column `c` in spill coding.
    pub fn col(&self, c: usize) -> &RawColumn {
        &self.cols[c]
    }

    /// Maps a global row id inside [`RawSegment::span`] to the local row
    /// index.
    #[inline]
    pub fn local(&self, row: RowId) -> usize {
        debug_assert!(self.span.contains(&(row as usize)), "row outside span");
        row as usize - self.span.start
    }
}

/// A shard's data in whichever form the residency cache holds — decoded
/// (global codes, a small [`Table`]) or raw (spill coding). Scans that can
/// run over either form ask for this via
/// [`ShardedTable::segment_data`] and never force a decode.
#[derive(Debug, Clone)]
pub enum SegmentData {
    /// The decoded, global-code resident form.
    Decoded(Arc<ShardSegment>),
    /// The spill-coded raw form (local codes + remap, no `Table`).
    Raw(Arc<RawSegment>),
}

impl SegmentData {
    /// The global row span.
    pub fn span(&self) -> Range<usize> {
        match self {
            SegmentData::Decoded(s) => s.span(),
            SegmentData::Raw(r) => r.span(),
        }
    }
}

/// The cached form of one shard. A raw entry is *upgraded* in place to the
/// decoded form when a caller needs a [`ShardSegment`]; both forms count
/// equally against the resident budget and pin the same way (the cache's
/// own `Arc` is the baseline count of 1).
#[derive(Debug)]
enum CachedSeg {
    Decoded(Arc<ShardSegment>),
    Raw(Arc<RawSegment>),
}

impl CachedSeg {
    fn is_pinned(&self) -> bool {
        match self {
            CachedSeg::Decoded(a) => Arc::strong_count(a) > 1,
            CachedSeg::Raw(a) => Arc::strong_count(a) > 1,
        }
    }

    fn data(&self) -> SegmentData {
        match self {
            CachedSeg::Decoded(a) => SegmentData::Decoded(Arc::clone(a)),
            CachedSeg::Raw(a) => SegmentData::Raw(Arc::clone(a)),
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    seg: CachedSeg,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Cache {
    resident: FxHashMap<usize, CacheEntry>,
    clock: u64,
    loads: u64,
    evictions: u64,
    /// Segments encoded to disk (once per shard at build time; a segment is
    /// never re-written).
    spills: u64,
    /// High-water mark of `resident.len()` — the honest "how many decoded
    /// segments were ever in memory at once" gauge the memory-bound ingest
    /// test asserts on.
    peak_resident: usize,
}

impl Cache {
    fn note_size(&mut self) {
        self.peak_resident = self.peak_resident.max(self.resident.len());
    }

    /// Evicts unpinned segments until the budget is met. An entry is
    /// *pinned* while any caller still holds its `Arc` (the cache's own
    /// reference is the baseline count of 1): evicting it would drop the
    /// map entry but not the bytes, so the resident counter would undercount
    /// true memory use — instead pinned segments stay in the map and count
    /// against the budget, and the cache only overshoots by the number of
    /// concurrently pinned segments (`resident.len() ≤ budget + pinned`).
    ///
    /// Only segments with a spill file (`spill[i].is_some()`) are eviction
    /// candidates: a spill-less resident segment — a live table's unsealed
    /// tail, or any fully-resident layout — could never be reloaded, so
    /// evicting it would lose rows, not memory.
    fn evict_over_budget(
        &mut self,
        budget: usize,
        policy: Residency,
        spill: &[Option<Arc<SpillFile>>],
    ) {
        if budget == 0 {
            return;
        }
        while self.resident.len() > budget {
            let unpinned = self
                .resident
                .iter()
                .filter(|(&k, e)| spill[k].is_some() && !e.seg.is_pinned());
            let victim = match policy {
                Residency::Lru => unpinned.min_by_key(|(_, e)| e.last_used),
                Residency::Sweep => unpinned.max_by_key(|(_, e)| e.last_used),
            }
            .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    self.resident.remove(&k);
                    self.evictions += 1;
                }
                // Everything over budget is pinned by in-flight scans or
                // not reloadable; the overshoot is bounded by those counts.
                None => break,
            }
        }
    }
}

/// The private spill subdirectory of one table, builder, or live table,
/// removed (best effort) when the last owner drops. Shared by `Arc` so a
/// live table's epoch snapshots can outlive each other in any order.
#[derive(Debug)]
struct SpillRoot {
    dir: PathBuf,
}

impl Drop for SpillRoot {
    fn drop(&mut self) {
        // Non-recursive by design: every file inside is owned by a
        // `SpillFile` holding an `Arc` to this root, so the directory is
        // empty by the time the last root handle drops.
        let _ = std::fs::remove_dir(&self.dir);
    }
}

/// One spill file, deleted when its last owner drops. Epoch snapshots of a
/// live table share sealed segments by `Arc`, so a superseded snapshot can
/// drop while newer ones keep reading the same bytes.
#[derive(Debug)]
struct SpillFile {
    path: PathBuf,
    /// Keeps the directory alive until every file in it is gone.
    _root: Arc<SpillRoot>,
}

impl SpillFile {
    fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Monotonic tag making every `ShardedTable`'s spill subdirectory unique
/// within the process (plus the pid across processes).
static SPILL_TAG: AtomicU64 = AtomicU64::new(0);

/// A table partitioned into fixed columnar shard segments with an optional
/// on-disk spill tier. See the module docs for the layout, spill format,
/// and determinism contract.
#[derive(Debug)]
pub struct ShardedTable {
    header: Arc<Table>,
    measures: Vec<(String, Vec<f64>)>,
    spans: Vec<Range<usize>>,
    spill: Vec<Option<Arc<SpillFile>>>,
    spill_root: Option<Arc<SpillRoot>>,
    resident_budget: usize,
    residency: Residency,
    cache: Mutex<Cache>,
}

impl ShardedTable {
    /// Partitions `table` according to `config`.
    ///
    /// With a spill directory, every shard is encoded to disk immediately
    /// and the cache starts **cold** (the first access to each shard pays a
    /// load), which keeps the resident budget honest from the first scan.
    /// Without one, `config.resident` must be `0` (nothing could be evicted)
    /// and all segments stay resident.
    pub fn from_table(table: &Table, config: &ShardConfig) -> io::Result<ShardedTable> {
        if config.resident > 0 && config.spill_dir.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a resident-shard budget requires a spill directory",
            ));
        }
        let spans = chunk_spans(table.n_rows(), config.shards.max(1));
        let header = Arc::new(table.header_only());
        let measures: Vec<(String, Vec<f64>)> = table
            .measure_names()
            .filter_map(|n| {
                // Listed names always resolve on their own table; the filter
                // only exists to keep this path panic-free.
                let m = table.measure(n);
                debug_assert!(m.is_ok(), "measure {n} listed but missing");
                Some((n.to_owned(), m.ok()?.to_vec()))
            })
            .collect();

        let spill_root = config
            .spill_dir
            .as_deref()
            .map(make_spill_root)
            .transpose()?;

        let mut spill: Vec<Option<Arc<SpillFile>>> = vec![None; spans.len()];
        let mut cache = Cache::default();
        for (i, span) in spans.iter().enumerate() {
            let cols: Vec<Vec<u32>> = (0..table.n_columns())
                .map(|c| table.column(c)[span.clone()].to_vec())
                .collect();
            if let Some(root) = &spill_root {
                let path = root.dir.join(segment_file_name(i));
                write_segment(&path, &cols, span.len())?;
                spill[i] = Some(Arc::new(SpillFile {
                    path,
                    _root: Arc::clone(root),
                }));
                cache.spills += 1;
                // Cold cache: segments are rebuilt from spill on first use.
            } else {
                cache.clock += 1;
                cache.resident.insert(
                    i,
                    CacheEntry {
                        seg: CachedSeg::Decoded(Arc::new(ShardSegment {
                            span: span.clone(),
                            table: segment_table(&header, &measures, span, cols),
                        })),
                        last_used: cache.clock,
                    },
                );
                cache.note_size();
            }
        }

        Ok(ShardedTable {
            header,
            measures,
            spans,
            spill,
            spill_root,
            resident_budget: config.resident,
            residency: config.residency,
            cache: Mutex::new(cache),
        })
    }

    /// The always-resident header: a zero-row [`Table`] carrying the
    /// schema, the global dictionaries, and the measure names. Weight
    /// functions, rule construction, and display read only this.
    pub fn header(&self) -> &Arc<Table> {
        &self.header
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.header.schema()
    }

    /// Total number of rows across all shards.
    pub fn n_rows(&self) -> usize {
        self.spans.last().map_or(0, |s| s.end)
    }

    /// Number of categorical columns.
    pub fn n_columns(&self) -> usize {
        self.header.n_columns()
    }

    /// The global dictionary of column `col`.
    pub fn dictionary(&self, col: usize) -> &Dictionary {
        self.header.dictionary(col)
    }

    /// Number of distinct values in column `col` (global).
    pub fn cardinality(&self, col: usize) -> usize {
        self.header.cardinality(col)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.spans.len()
    }

    /// The shard spans, in order; they partition `[0, n_rows)`.
    pub fn spans(&self) -> &[Range<usize>] {
        &self.spans
    }

    /// The shard holding global row `row`. Panics when out of range.
    pub fn shard_of_row(&self, row: RowId) -> usize {
        let r = row as usize;
        assert!(r < self.n_rows(), "row {r} out of range");
        // First span whose end exceeds r.
        self.spans.partition_point(|s| s.end <= r)
    }

    /// Locks the residency cache, tolerating a poisoned lock: the cache is
    /// bookkeeping (clock, counters, resident map) mutated in small
    /// always-consistent steps, so a peer that panicked while holding the
    /// lock cannot have left it torn — continuing is strictly better than
    /// cascading the panic into spill-I/O paths that promise not to.
    fn cache(&self) -> std::sync::MutexGuard<'_, Cache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The segment for shard `i` in decoded (global-code) form, loading —
    /// or upgrading a cached raw entry — as needed.
    ///
    /// The cache lock is **not** held across the disk read or the
    /// local→global decode: a cache hit on one shard never waits behind
    /// another thread's in-flight load. Two threads missing the same shard
    /// may both read the file — segments are immutable, so the loser's copy
    /// is simply dropped (both reads count in [`ShardedTable::loads`]).
    /// Upgrading a cached [`SegmentData::Raw`] entry re-codes in memory and
    /// does **not** count as a load.
    ///
    /// # Errors
    ///
    /// [`TableError::Corrupt`] when the spill file fails validation (bad
    /// magic, truncation, shape mismatch, out-of-range local code),
    /// [`TableError::Io`] when reading it fails.
    pub fn try_segment(&self, i: usize) -> Result<Arc<ShardSegment>, TableError> {
        let span = self.spans[i].clone();
        let mut raw_hit: Option<Arc<RawSegment>> = None;
        {
            let mut cache = self.cache();
            cache.clock += 1;
            let clock = cache.clock;
            let mut decoded_hit: Option<Arc<ShardSegment>> = None;
            if let Some(entry) = cache.resident.get_mut(&i) {
                entry.last_used = clock;
                match &entry.seg {
                    CachedSeg::Decoded(a) => decoded_hit = Some(Arc::clone(a)),
                    CachedSeg::Raw(a) => raw_hit = Some(Arc::clone(a)),
                }
            }
            if let Some(seg) = decoded_hit {
                // Hits reclaim too: a burst of concurrent pins can grow the
                // cache past the budget, and the released segments would
                // otherwise linger as permanent hits (the budget never
                // re-honored, eviction never firing again). The clone above
                // pins `i`, so the pass cannot drop the returned segment.
                cache.evict_over_budget(self.resident_budget, self.residency, &self.spill);
                return Ok(seg);
            }
        }
        // Miss (or raw upgrade): read + decode outside the lock.
        let cols: Vec<Vec<u32>> = match &raw_hit {
            Some(raw) => globalize(&raw.cols),
            None => {
                let Some(path) = self.spill[i].as_ref() else {
                    // Unreachable by construction: a shard is either resident
                    // or spilled. Surface as an error, not a panic.
                    debug_assert!(false, "non-resident shard {i} has no spill file");
                    return Err(TableError::Io(format!(
                        "shard {i} is neither resident nor spilled"
                    )));
                };
                globalize(&read_raw_segment(
                    path.path(),
                    self.n_columns(),
                    span.len(),
                )?)
            }
        };
        let from_disk = raw_hit.is_none();
        let seg = Arc::new(ShardSegment {
            span: span.clone(),
            table: segment_table(&self.header, &self.measures, &span, cols),
        });

        let mut cache = self.cache();
        cache.clock += 1;
        let clock = cache.clock;
        if from_disk {
            cache.loads += 1;
        }
        let seg = match cache.resident.get_mut(&i) {
            Some(entry) => {
                entry.last_used = clock;
                match &entry.seg {
                    // A concurrent loader won the race; keep its copy (ours
                    // drops).
                    CachedSeg::Decoded(other) => Arc::clone(other),
                    // Upgrade the raw entry in place; the packed form drops
                    // when the last raw pin releases.
                    CachedSeg::Raw(_) => {
                        entry.seg = CachedSeg::Decoded(Arc::clone(&seg));
                        seg
                    }
                }
            }
            None => {
                cache.resident.insert(
                    i,
                    CacheEntry {
                        seg: CachedSeg::Decoded(Arc::clone(&seg)),
                        last_used: clock,
                    },
                );
                seg
            }
        };
        cache.note_size();
        // The caller's `seg` clone pins shard `i` (strong count ≥ 2), so the
        // eviction pass can never drop the segment being returned.
        cache.evict_over_budget(self.resident_budget, self.residency, &self.spill);
        Ok(seg)
    }

    /// The shard's data in **whichever form the cache holds**, loading the
    /// raw (spill-coded) form on a miss — never forcing a local→global
    /// decode. This is the pushdown scan entry point: a miss costs one file
    /// read into packed codes; a later [`ShardedTable::try_segment`] on the
    /// same shard upgrades the entry in place.
    ///
    /// # Errors
    ///
    /// As [`ShardedTable::try_segment`].
    pub fn segment_data(&self, i: usize) -> Result<SegmentData, TableError> {
        if let Some(d) = self.cached_data(i) {
            return Ok(d);
        }
        let span = self.spans[i].clone();
        let Some(path) = self.spill[i].as_ref() else {
            debug_assert!(false, "non-resident shard {i} has no spill file");
            return Err(TableError::Io(format!(
                "shard {i} is neither resident nor spilled"
            )));
        };
        let cols = read_raw_segment(path.path(), self.n_columns(), span.len())?;
        let raw = Arc::new(RawSegment { span, cols });

        let mut cache = self.cache();
        cache.clock += 1;
        let clock = cache.clock;
        cache.loads += 1;
        let data = match cache.resident.get_mut(&i) {
            // A concurrent loader won the race; use whatever form it cached.
            Some(entry) => {
                entry.last_used = clock;
                entry.seg.data()
            }
            None => {
                cache.resident.insert(
                    i,
                    CacheEntry {
                        seg: CachedSeg::Raw(Arc::clone(&raw)),
                        last_used: clock,
                    },
                );
                SegmentData::Raw(raw)
            }
        };
        cache.note_size();
        cache.evict_over_budget(self.resident_budget, self.residency, &self.spill);
        Ok(data)
    }

    /// The shard's cached data in whichever form, or `None` on a miss —
    /// never touches disk. Lets a scan prefer whatever is already resident
    /// before deciding how to read.
    pub fn cached_data(&self, i: usize) -> Option<SegmentData> {
        let mut cache = self.cache();
        cache.clock += 1;
        let clock = cache.clock;
        let data = {
            let entry = cache.resident.get_mut(&i)?;
            entry.last_used = clock;
            entry.seg.data()
        };
        cache.evict_over_budget(self.resident_budget, self.residency, &self.spill);
        Some(data)
    }

    /// Range-reads **only** `cols` of shard `i`'s spill file (one `pread`
    /// per column via the file's offset table) and returns them in request
    /// order. The result is *transient*: it is never inserted into the
    /// residency cache, so a covered-rows scan that needs two of fifty
    /// columns neither decodes the other forty-eight nor disturbs what is
    /// resident. Counts as a load in [`ShardedTable::loads`].
    ///
    /// Callers should prefer [`ShardedTable::cached_data`] first; this is
    /// the miss path for scans that touch few columns.
    ///
    /// # Errors
    ///
    /// As [`ShardedTable::try_segment`]; additionally [`TableError::Io`]
    /// when the table does not spill (fully-resident tables always hit
    /// `cached_data`, so a miss here means the caller skipped it).
    pub fn read_columns(&self, i: usize, cols: &[usize]) -> Result<Vec<RawColumn>, TableError> {
        let span = self.spans[i].clone();
        let Some(path) = self.spill[i].as_ref() else {
            debug_assert!(false, "read_columns on a non-spilling table");
            return Err(TableError::Io(format!(
                "shard {i} has no spill file to range-read; use cached_data first"
            )));
        };
        let out = read_spill_columns(path.path(), cols, self.n_columns(), span.len())?;
        self.cache().loads += 1;
        Ok(out)
    }

    /// Materializes `rows` (global ids, in the given order) into a new
    /// in-memory [`Table`] that preserves the global dictionaries — see
    /// [`Table::gather_rows`].
    ///
    /// Every distinct shard's segment is pinned **once** up front (reservoir
    /// samples arrive in arbitrary order, so per-transition fetching would
    /// reload a tiny-budget cache on nearly every row); the pins are
    /// released when the gather returns. The output is independent of the
    /// fetch strategy — rows are emitted strictly in the given order.
    ///
    /// # Errors
    ///
    /// As [`ShardedTable::try_segment`].
    pub fn try_gather_rows(&self, rows: &[RowId]) -> Result<Table, TableError> {
        if rows.is_empty() {
            return Ok(self.header.header_only());
        }
        let mut segs: FxHashMap<usize, Arc<ShardSegment>> = FxHashMap::default();
        for &row in rows {
            let shard = self.shard_of_row(row);
            if let std::collections::hash_map::Entry::Vacant(slot) = segs.entry(shard) {
                slot.insert(self.try_segment(shard)?);
            }
        }
        // Group consecutive rows by shard (gather_multi part order = row
        // order).
        let mut parts: Vec<(&Arc<ShardSegment>, Vec<RowId>)> = Vec::new();
        for &row in rows {
            let seg = &segs[&self.shard_of_row(row)];
            match parts.last_mut() {
                Some((ps, locals)) if Arc::ptr_eq(ps, seg) => {
                    locals.push(ps.local(row) as RowId);
                }
                _ => {
                    let local = seg.local(row) as RowId;
                    parts.push((seg, vec![local]));
                }
            }
        }
        let borrowed: Vec<(&Table, &[RowId])> = parts
            .iter()
            .map(|(seg, locals)| (seg.table(), locals.as_slice()))
            .collect();
        Ok(Table::gather_multi(&borrowed))
    }

    /// Number of segments currently resident in the cache.
    pub fn resident_count(&self) -> usize {
        self.cache().resident.len()
    }

    /// Cumulative spill-file loads (cache misses) since construction.
    pub fn loads(&self) -> u64 {
        self.cache().loads
    }

    /// Cumulative evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.cache().evictions
    }

    /// Cumulative segments encoded to disk (exactly once per shard for a
    /// spilling table; `0` for a fully-resident one). A streaming build
    /// that truly streams writes each segment once and never rewrites —
    /// `spills() == n_shards()` with `loads() == 0` until the first scan.
    pub fn spills(&self) -> u64 {
        self.cache().spills
    }

    /// High-water mark of simultaneously resident (decoded) segments.
    pub fn peak_resident(&self) -> usize {
        self.cache().peak_resident
    }

    /// Number of resident segments currently pinned by in-flight scans
    /// (callers still holding the segment `Arc`). Pinned segments count
    /// against the resident budget and are never evicted, so
    /// `resident_count() ≤ resident_budget + pinned()` at all times.
    pub fn pinned(&self) -> usize {
        self.cache()
            .resident
            .values()
            .filter(|e| e.seg.is_pinned())
            .count()
    }

    /// `(resident segments, pinned segments)` observed under **one** cache
    /// lock acquisition — the atomic snapshot concurrency tests assert the
    /// budget invariant on: `resident ≤ resident_budget + pinned`.
    ///
    /// The call runs an eviction pass (eviction otherwise only runs on
    /// segment access, so unpinned over-budget entries whose pins were just
    /// released may linger until the next touch) and then counts pins —
    /// repeating until the two passes agree, because a scan thread can drop
    /// its segment `Arc` *between* them without taking the cache lock
    /// (un-pinning an entry the eviction pass had just spared). New pins on
    /// cached entries require this lock, so each retry can only observe
    /// fewer pinned entries and evicts at least one of them: the loop
    /// terminates, and every returned snapshot satisfies the invariant.
    /// Sampling [`ShardedTable::resident_count`] and
    /// [`ShardedTable::pinned`] separately instead could race a concurrent
    /// pin release between the two reads.
    pub fn resident_and_pinned(&self) -> (usize, usize) {
        let mut cache = self.cache();
        loop {
            cache.evict_over_budget(self.resident_budget, self.residency, &self.spill);
            // Spill-less entries (a live table's resident tail) can never be
            // evicted, so they count like pins for the budget invariant.
            let pinned = cache
                .resident
                .iter()
                .filter(|(&i, e)| e.seg.is_pinned() || self.spill[i].is_none())
                .count();
            if self.resident_budget == 0 || cache.resident.len() <= self.resident_budget + pinned {
                return (cache.resident.len(), pinned);
            }
        }
    }

    /// The configured resident-shard budget (`0` = unlimited).
    pub fn resident_budget(&self) -> usize {
        self.resident_budget
    }

    /// The configured eviction policy.
    pub fn residency(&self) -> Residency {
        self.residency
    }

    /// The spill file of shard `i`, if this table spills.
    pub fn spill_path(&self, i: usize) -> Option<&std::path::Path> {
        self.spill[i].as_ref().map(|f| f.path())
    }

    /// The spill directory this table keeps alive, if any. Spill files are
    /// reference-counted across tables (live-table snapshots share sealed
    /// segments); the directory itself is removed when the last holder —
    /// table or spill file — drops.
    pub fn spill_dir(&self) -> Option<&std::path::Path> {
        self.spill_root.as_deref().map(|r| r.dir.as_path())
    }

    /// Drops every cached segment that can be reloaded from its spill file
    /// and is not pinned by an in-flight scan. Memory-pressure relief for
    /// embedders and fault-injection hook for tests; the next access to a
    /// dropped shard pays one spill read.
    pub fn evict_all(&self) {
        let mut cache = self.cache();
        let mut dropped = 0u64;
        cache.resident.retain(|&i, e| {
            let keep = self.spill[i].is_none() || e.seg.is_pinned();
            if !keep {
                dropped += 1;
            }
            keep
        });
        cache.evictions += dropped;
    }
}

/// Creates the unique spill subdirectory for one table or builder.
fn make_spill_root(dir: &std::path::Path) -> io::Result<Arc<SpillRoot>> {
    let tag = SPILL_TAG.fetch_add(1, Ordering::Relaxed);
    let root = dir.join(format!("sdd-shards-{}-{tag:04}", std::process::id()));
    std::fs::create_dir_all(&root)?;
    Ok(Arc::new(SpillRoot { dir: root }))
}

fn segment_file_name(i: usize) -> String {
    format!("shard-{i:05}.seg")
}

// Spill cleanup is reference-counted, not tied to the table's drop: each
// spill file deletes itself when its last `Arc` owner releases it, and the
// `SpillRoot` removes the (by then empty) directory when the last file and
// root handle are gone. A lone frozen table behaves exactly as before —
// dropping it deletes its files and directory — while a live table's epoch
// snapshots can share sealed segments and drop in any order.

// ---------------------------------------------------------------------------
// Streaming builder
// ---------------------------------------------------------------------------

/// Streaming out-of-core construction of a [`ShardedTable`]: rows arrive
/// one at a time (from the CSV reader or any row source), global
/// dictionaries grow online, and each fixed-span segment is **sealed and
/// spilled the moment its last row arrives** — so peak memory during a
/// spilling build is one unsealed segment plus the dictionaries and measure
/// columns, never the whole table.
///
/// The span layout is [`chunk_spans`]`(total_rows, shards)` — a function of
/// the *total* row count — so the builder is told the total up front (the
/// CSV path counts records in a cheap first streaming pass; see
/// [`crate::csv::stream_csv_file`]) and [`ShardBuilder::finish`] rejects a
/// stream that delivered a different count.
///
/// ## Bit-identity with [`ShardedTable::from_table`]
///
/// Global codes are assigned by [`Dictionary::intern`] in first-appearance
/// order. A stream that delivers rows in table order therefore interns
/// every value at exactly the moment the monolithic [`TableBuilder`] would
/// have, producing identical codes, identical segment columns, and — since
/// the spill encoder is a pure function of a segment's global codes —
/// byte-identical spill files. The cross-shard parity suite pins this for
/// every shard count and budget: a stream-built table is indistinguishable
/// from a materialize-then-shard build in every drill-down transcript.
///
/// [`TableBuilder`]: crate::TableBuilder
#[derive(Debug)]
pub struct ShardBuilder {
    schema: Schema,
    dicts: Vec<Dictionary>,
    measure_names: Vec<String>,
    measure_vals: Vec<Vec<f64>>,
    spans: Vec<Range<usize>>,
    total_rows: usize,
    resident_budget: usize,
    residency: Residency,
    spill_root: Option<Arc<SpillRoot>>,
    spill: Vec<Option<Arc<SpillFile>>>,
    /// Sealed segment columns, kept only for fully-resident builds (a
    /// spilling build drops a segment's codes as soon as they hit disk).
    sealed: Vec<Option<Vec<Vec<u32>>>>,
    cur: Vec<Vec<u32>>,
    cur_shard: usize,
    rows_pushed: usize,
    spills: u64,
    finished: bool,
}

impl ShardBuilder {
    /// Starts a streaming build of `total_rows` rows under `config`.
    /// `measures` declares the numeric measure columns (fed per row through
    /// [`ShardBuilder::push_row`]; they stay fully resident, 8 bytes per
    /// row, exactly as in a materialized [`ShardedTable`]).
    pub fn new(
        schema: Schema,
        measures: Vec<String>,
        total_rows: usize,
        config: &ShardConfig,
    ) -> Result<ShardBuilder, TableError> {
        if config.resident > 0 && config.spill_dir.is_none() {
            return Err(TableError::Io(
                "a resident-shard budget requires a spill directory".to_owned(),
            ));
        }
        for (i, name) in measures.iter().enumerate() {
            if schema.index_of(name).is_ok() || measures[..i].contains(name) {
                return Err(TableError::DuplicateColumn(name.clone()));
            }
        }
        let spans = chunk_spans(total_rows, config.shards.max(1));
        let spill_root = config
            .spill_dir
            .as_deref()
            .map(make_spill_root)
            .transpose()?;
        let n_cols = schema.n_columns();
        let first_len = spans.first().map_or(0, |s| s.len());
        Ok(ShardBuilder {
            dicts: vec![Dictionary::new(); n_cols],
            // NB: `vec![Vec::with_capacity(..); n]` would clone away the
            // capacity for all but the last element.
            measure_vals: (0..measures.len())
                .map(|_| Vec::with_capacity(total_rows))
                .collect(),
            measure_names: measures,
            spill: vec![None; spans.len()],
            sealed: vec![None; spans.len()],
            cur: (0..n_cols).map(|_| Vec::with_capacity(first_len)).collect(),
            spans,
            total_rows,
            resident_budget: config.resident,
            residency: config.residency,
            spill_root,
            schema,
            cur_shard: 0,
            rows_pushed: 0,
            spills: 0,
            finished: false,
        })
    }

    /// The declared total row count.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Rows pushed so far.
    pub fn rows_pushed(&self) -> usize {
        self.rows_pushed
    }

    /// Segments sealed (and, for a spilling build, written to disk) so far.
    pub fn segments_sealed(&self) -> usize {
        self.cur_shard
    }

    /// Appends one row: `cats` are the categorical values in schema order,
    /// `measures` the declared measure values in declaration order. Interns
    /// globally, buffers into the current segment, and seals/spills the
    /// segment when the row completes its span.
    pub fn push_row<S: AsRef<str>>(
        &mut self,
        cats: &[S],
        measures: &[f64],
    ) -> Result<(), TableError> {
        if self.rows_pushed >= self.total_rows {
            return Err(TableError::RowCount {
                declared: self.total_rows,
                got: self.rows_pushed + 1,
            });
        }
        if cats.len() != self.schema.n_columns() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.n_columns(),
                got: cats.len(),
            });
        }
        if measures.len() != self.measure_names.len() {
            return Err(TableError::ArityMismatch {
                expected: self.measure_names.len(),
                got: measures.len(),
            });
        }
        for (c, v) in cats.iter().enumerate() {
            let code = self.dicts[c].intern(v.as_ref());
            self.cur[c].push(code);
        }
        for (slot, &v) in self.measure_vals.iter_mut().zip(measures) {
            slot.push(v);
        }
        self.rows_pushed += 1;
        if self.rows_pushed == self.spans[self.cur_shard].end {
            self.seal_current()?;
        }
        Ok(())
    }

    /// Seals the current segment: spills it immediately (spilling build) or
    /// parks its columns for [`ShardBuilder::finish`] (fully resident).
    fn seal_current(&mut self) -> Result<(), TableError> {
        let i = self.cur_shard;
        let span = self.spans[i].clone();
        let next_len = self.spans.get(i + 1).map_or(0, |s| s.len());
        let cols: Vec<Vec<u32>> = self
            .cur
            .iter_mut()
            .map(|c| std::mem::replace(c, Vec::with_capacity(next_len)))
            .collect();
        debug_assert!(cols.iter().all(|c| c.len() == span.len()));
        if let Some(root) = &self.spill_root {
            let path = root.dir.join(segment_file_name(i));
            write_segment(&path, &cols, span.len())?;
            self.spill[i] = Some(Arc::new(SpillFile {
                path,
                _root: Arc::clone(root),
            }));
            self.spills += 1;
            // `cols` drops here: a spilling build never retains sealed codes.
        } else {
            self.sealed[i] = Some(cols);
        }
        self.cur_shard += 1;
        Ok(())
    }

    /// Completes the build. Fails with [`TableError::RowCount`] when fewer
    /// rows arrived than declared (cleaning up any spill files written).
    pub fn finish(mut self) -> Result<ShardedTable, TableError> {
        if self.rows_pushed != self.total_rows {
            return Err(TableError::RowCount {
                declared: self.total_rows,
                got: self.rows_pushed,
            });
        }
        // For an empty table the single `0..0` span never fills via
        // `push_row`; seal it here so the layout matches `from_table`.
        while self.cur_shard < self.spans.len() {
            debug_assert!(self.spans[self.cur_shard].is_empty());
            self.seal_current()?;
        }

        let dicts: Vec<Arc<Dictionary>> = std::mem::take(&mut self.dicts)
            .into_iter()
            .map(Arc::new)
            .collect();
        let header_measures: Vec<(String, Vec<f64>)> = self
            .measure_names
            .iter()
            .map(|n| (n.clone(), Vec::new()))
            .collect();
        let header = Arc::new(Table::from_parts(
            self.schema.clone(),
            dicts,
            vec![Vec::new(); self.schema.n_columns()],
            header_measures,
            0,
        ));
        let measures: Vec<(String, Vec<f64>)> = self
            .measure_names
            .iter()
            .cloned()
            .zip(std::mem::take(&mut self.measure_vals))
            .collect();

        let mut cache = Cache {
            spills: self.spills,
            ..Cache::default()
        };
        if self.spill_root.is_none() {
            // Segment tables can only exist now: they share the *final*
            // global dictionaries (built online during the stream), so an
            // early segment sees the same cardinalities as a late one.
            for (i, span) in self.spans.iter().enumerate() {
                let Some(cols) = self.sealed[i].take() else {
                    // Unreachable: push_row/finish seal every span in order
                    // before this loop runs.
                    debug_assert!(false, "segment {i} was never sealed");
                    return Err(TableError::Io(format!(
                        "internal: segment {i} was never sealed"
                    )));
                };
                cache.clock += 1;
                cache.resident.insert(
                    i,
                    CacheEntry {
                        seg: CachedSeg::Decoded(Arc::new(ShardSegment {
                            span: span.clone(),
                            table: segment_table(&header, &measures, span, cols),
                        })),
                        last_used: cache.clock,
                    },
                );
                cache.note_size();
            }
        }

        self.finished = true;
        Ok(ShardedTable {
            header,
            measures,
            spans: std::mem::take(&mut self.spans),
            spill: std::mem::take(&mut self.spill),
            spill_root: self.spill_root.take(),
            resident_budget: self.resident_budget,
            residency: self.residency,
            cache: Mutex::new(cache),
        })
    }
}

impl Drop for ShardBuilder {
    fn drop(&mut self) {
        // An abandoned build (error mid-stream, failed `finish`) must not
        // leak its spill files; a successful `finish` hands the root to the
        // `ShardedTable`, which owns cleanup from then on. The root is this
        // builder's exclusively (unique per-process tag), so removing the
        // whole tree also catches a partially-written segment left by a
        // failed `write_segment` that never made it into `self.spill`.
        if !self.finished {
            if let Some(root) = &self.spill_root {
                let _ = std::fs::remove_dir_all(&root.dir);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Live (append-only) tables
// ---------------------------------------------------------------------------

/// Configuration of a [`LiveTable`].
#[derive(Debug, Clone)]
pub struct LiveTableConfig {
    /// Fixed rows per sealed segment (`C`, clamped to ≥ 1). Appended rows
    /// buffer in an always-resident tail until it fills, at which point the
    /// segment is sealed through the same spill encoder the builders use.
    /// The segment layout of a live table is a pure function of its total
    /// row count and `C`, so a from-scratch rebuild of the same rows (in
    /// any append batching) produces byte-identical sealed spill files.
    pub rows_per_segment: usize,
    /// Resident-segment budget each snapshot enforces (`0` = unlimited).
    /// The unsealed tail has no spill file, so it is never evicted and is
    /// exempt from the budget (like a pinned segment).
    pub resident: usize,
    /// Spill directory for sealed segments (`None` = fully resident). As
    /// with [`ShardConfig`], a non-zero budget requires a spill directory.
    pub spill_dir: Option<PathBuf>,
    /// Eviction policy under the resident budget.
    pub residency: Residency,
}

impl LiveTableConfig {
    /// A fully-resident live table sealing every `rows_per_segment` rows.
    pub fn in_memory(rows_per_segment: usize) -> Self {
        Self {
            rows_per_segment,
            resident: 0,
            spill_dir: None,
            residency: Residency::Lru,
        }
    }

    /// A spilling live table: sealed segments on disk under `dir`, at most
    /// `resident` of them decoded at once per snapshot.
    pub fn spilling(rows_per_segment: usize, resident: usize, dir: impl Into<PathBuf>) -> Self {
        Self {
            rows_per_segment,
            resident: resident.max(1),
            spill_dir: Some(dir.into()),
            residency: Residency::Lru,
        }
    }
}

/// One epoch's frozen view of a [`LiveTable`]: an ordinary immutable
/// [`ShardedTable`] (every sharded scan, parity, and caching path works on
/// it unchanged) plus the epoch it captures and the visible-row count at
/// every epoch up to it (what the sampling layer's per-epoch reservoir
/// folds partition on).
#[derive(Debug, Clone)]
pub struct LiveSnapshot {
    /// The frozen table. Sealed segments are shared (by `Arc`-owned spill
    /// files) across snapshots; the unsealed tail is copied per snapshot
    /// and always resident.
    pub table: Arc<ShardedTable>,
    /// The epoch this snapshot captures (number of appends so far).
    pub epoch: u64,
    /// `epoch_rows[e]` = total visible rows at epoch `e`, for `e ≤ epoch`
    /// (`epoch_rows[0]` is the construction-time row count, `0`).
    pub epoch_rows: Arc<Vec<usize>>,
}

/// A sealed-or-pending segment staged during one append batch; holds the
/// decoded columns until the whole batch commits so a failed seal can put
/// them back into the tail.
enum StagedSeg {
    Spilled(Arc<SpillFile>, Vec<Vec<u32>>),
    Resident(Vec<Vec<u32>>),
}

#[derive(Debug)]
struct LiveState {
    /// The master mutable dictionaries; snapshots get frozen clones.
    dicts: Vec<Dictionary>,
    /// Full measure columns (cloned into each snapshot).
    measure_vals: Vec<Vec<f64>>,
    /// Sealed segments' spill files, in segment order (spilling mode).
    sealed_spill: Vec<Arc<SpillFile>>,
    /// Sealed segments' decoded columns, in segment order (resident mode).
    sealed_cols: Vec<Vec<Vec<u32>>>,
    /// Unsealed tail columns in global codes (< `rows_per_segment` rows).
    tail: Vec<Vec<u32>>,
    /// Visible row count at each epoch (`epoch_rows[e]`, `e` = epoch).
    epoch_rows: Vec<usize>,
    /// The current frozen snapshot.
    current: LiveSnapshot,
    /// Storage counters folded in from superseded snapshots, so the
    /// reported totals never move backwards across epochs.
    base_loads: u64,
    base_evictions: u64,
    base_peak: usize,
    /// Lifetime sealed-segment writes (one per seal, spilling mode).
    total_spills: u64,
}

/// An append-only table: rows arrive in batches, each batch bumps a
/// monotonic **epoch** and publishes a new frozen [`LiveSnapshot`].
///
/// * Sealing reuses the streaming builder's spill machinery
///   ([`write_segment`], same `SDDSHRD2` encoding): every
///   `rows_per_segment` rows become an immutable sealed segment, written to
///   disk exactly once; the remainder stays in an always-resident tail.
/// * Snapshots are plain [`ShardedTable`]s sharing the sealed spill files
///   by `Arc`, so every existing sharded scan path works on them unchanged
///   and a superseded snapshot can outlive its successors without
///   invalidating their files.
/// * Global codes are interned in first-appearance order (exactly as the
///   builders do), so a live table grown by any sequence of appends holds
///   the same codes — and byte-identical sealed spill files — as one grown
///   by a single append of all rows (the seal-boundary tests pin this).
/// * A failed append (spill I/O error) rolls the table back to the prior
///   epoch: dictionaries, tail, and measures are restored, staged files
///   removed — a retry or a rebuild observes no trace of the failure.
#[derive(Debug)]
pub struct LiveTable {
    schema: Schema,
    measure_names: Vec<String>,
    rows_per_segment: usize,
    resident_budget: usize,
    residency: Residency,
    spill_root: Option<Arc<SpillRoot>>,
    /// Mirrors `state.epoch_rows.len() - 1`; readable without the lock.
    epoch: AtomicU64,
    state: Mutex<LiveState>,
}

impl LiveTable {
    /// Creates an empty live table at epoch 0.
    pub fn new(
        schema: Schema,
        measures: Vec<String>,
        config: &LiveTableConfig,
    ) -> Result<LiveTable, TableError> {
        if config.resident > 0 && config.spill_dir.is_none() {
            return Err(TableError::Io(
                "a resident-shard budget requires a spill directory".to_owned(),
            ));
        }
        for (i, name) in measures.iter().enumerate() {
            if schema.index_of(name).is_ok() || measures[..i].contains(name) {
                return Err(TableError::DuplicateColumn(name.clone()));
            }
        }
        let spill_root = config
            .spill_dir
            .as_deref()
            .map(make_spill_root)
            .transpose()?;
        let n_cols = schema.n_columns();
        let live = LiveTable {
            measure_names: measures.clone(),
            rows_per_segment: config.rows_per_segment.max(1),
            resident_budget: config.resident,
            residency: config.residency,
            spill_root,
            epoch: AtomicU64::new(0),
            state: Mutex::new(LiveState {
                dicts: vec![Dictionary::new(); n_cols],
                measure_vals: vec![Vec::new(); measures.len()],
                sealed_spill: Vec::new(),
                sealed_cols: Vec::new(),
                tail: vec![Vec::new(); n_cols],
                epoch_rows: vec![0],
                // Placeholder; replaced by the real epoch-0 snapshot below.
                current: LiveSnapshot {
                    table: Arc::new(ShardedTable {
                        header: Arc::new(Table::from_parts(
                            schema.clone(),
                            (0..n_cols).map(|_| Arc::new(Dictionary::new())).collect(),
                            vec![Vec::new(); n_cols],
                            measures.iter().map(|n| (n.clone(), Vec::new())).collect(),
                            0,
                        )),
                        measures: Vec::new(),
                        // One empty segment (rows 0..0), not an empty Vec —
                        // spelled via `once` so clippy sees the intent.
                        spans: std::iter::once(0..0).collect(),
                        spill: vec![None],
                        spill_root: None,
                        resident_budget: 0,
                        residency: config.residency,
                        cache: Mutex::new(Cache::default()),
                    }),
                    epoch: 0,
                    epoch_rows: Arc::new(vec![0]),
                },
                base_loads: 0,
                base_evictions: 0,
                base_peak: 0,
                total_spills: 0,
            }),
            schema,
        };
        {
            let mut state = live.state();
            live.rebuild_snapshot(&mut state);
        }
        Ok(live)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Fixed rows per sealed segment (`C`).
    pub fn rows_per_segment(&self) -> usize {
        self.rows_per_segment
    }

    /// The current epoch (number of appends so far). Monotonic; readable
    /// without blocking an in-flight append.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Total rows visible in the current snapshot.
    pub fn n_rows(&self) -> usize {
        self.state().current.table.n_rows()
    }

    /// Sealed segments so far.
    pub fn segments_sealed(&self) -> usize {
        let state = self.state();
        state.sealed_spill.len().max(state.sealed_cols.len())
    }

    /// The current frozen snapshot (cheap: clones three `Arc`s).
    pub fn snapshot(&self) -> LiveSnapshot {
        self.state().current.clone()
    }

    /// Lifetime storage counters `(loads, evictions, spills, peak_resident)`
    /// across all epochs: the current snapshot's counters on top of the
    /// totals folded in from superseded snapshots. Monotonic.
    pub fn storage_counters(&self) -> (u64, u64, u64, usize) {
        let state = self.state();
        let t = &state.current.table;
        (
            state.base_loads + t.loads(),
            state.base_evictions + t.evictions(),
            state.total_spills,
            state.base_peak.max(t.peak_resident()),
        )
    }

    /// Locks the live state; poisoning tolerated as in
    /// [`ShardedTable::cache`] (every mutation either commits a consistent
    /// epoch or rolls back before unwinding).
    fn state(&self) -> std::sync::MutexGuard<'_, LiveState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends a batch of rows, bumps the epoch, and returns the new
    /// snapshot. `cats[i]` are row `i`'s categorical values in schema
    /// order; `measures[i]` its measure values in declaration order (pass
    /// `&[]` when the table declares no measures). Appending an empty batch
    /// still bumps the epoch (a deliberate no-op data change).
    ///
    /// # Errors
    ///
    /// [`TableError::ArityMismatch`] on a malformed row (checked before any
    /// state changes); [`TableError::Io`] when sealing a segment fails —
    /// the table rolls back to the previous epoch.
    pub fn try_append<R, S>(
        &self,
        cats: &[R],
        measures: &[Vec<f64>],
    ) -> Result<LiveSnapshot, TableError>
    where
        R: AsRef<[S]>,
        S: AsRef<str>,
    {
        let n_cols = self.schema.n_columns();
        for row in cats {
            if row.as_ref().len() != n_cols {
                return Err(TableError::ArityMismatch {
                    expected: n_cols,
                    got: row.as_ref().len(),
                });
            }
        }
        if !(self.measure_names.is_empty() && measures.is_empty()) {
            if measures.len() != cats.len() {
                return Err(TableError::ArityMismatch {
                    expected: cats.len(),
                    got: measures.len(),
                });
            }
            for m in measures {
                if m.len() != self.measure_names.len() {
                    return Err(TableError::ArityMismatch {
                        expected: self.measure_names.len(),
                        got: m.len(),
                    });
                }
            }
        }

        let mut state = self.state();
        // Rollback marks (everything before this point is read-only).
        let dict_lens: Vec<usize> = state.dicts.iter().map(Dictionary::len).collect();
        let old_tail_len = state.tail.first().map_or(0, Vec::len);
        let old_measure_len = state.measure_vals.first().map_or(0, Vec::len);

        // Intern + buffer (infallible after the arity checks above).
        for (r, row) in cats.iter().enumerate() {
            for (c, v) in row.as_ref().iter().enumerate() {
                let code = state.dicts[c].intern(v.as_ref());
                state.tail[c].push(code);
            }
            if let Some(m) = measures.get(r) {
                for (slot, &v) in state.measure_vals.iter_mut().zip(m) {
                    slot.push(v);
                }
            }
        }

        // Seal every full segment, staging results until the batch commits.
        let c = self.rows_per_segment;
        let mut staged: Vec<StagedSeg> = Vec::new();
        let seal_result: Result<(), TableError> = (|| {
            while state.tail.first().map_or(0, Vec::len) >= c {
                let cols: Vec<Vec<u32>> = state
                    .tail
                    .iter_mut()
                    .map(|col| {
                        let rest = col.split_off(c);
                        std::mem::replace(col, rest)
                    })
                    .collect();
                match &self.spill_root {
                    Some(root) => {
                        let i = state.sealed_spill.len() + staged.len();
                        let path = root.dir.join(segment_file_name(i));
                        if let Err(e) = write_segment(&path, &cols, c) {
                            // Put the drained rows back before surfacing.
                            for (col, sealed) in state.tail.iter_mut().zip(cols) {
                                let rest = std::mem::replace(col, sealed);
                                col.extend(rest);
                            }
                            return Err(e.into());
                        }
                        staged.push(StagedSeg::Spilled(
                            Arc::new(SpillFile {
                                path,
                                _root: Arc::clone(root),
                            }),
                            cols,
                        ));
                    }
                    None => staged.push(StagedSeg::Resident(cols)),
                }
            }
            Ok(())
        })();

        if let Err(e) = seal_result {
            // Roll back: restore the tail (staged segments back in front,
            // appended rows dropped), measures, and dictionaries. Dropping
            // the staged `SpillFile`s removes their files.
            for seg in staged.into_iter().rev() {
                let cols = match seg {
                    StagedSeg::Spilled(_, cols) | StagedSeg::Resident(cols) => cols,
                };
                for (col, sealed) in state.tail.iter_mut().zip(cols) {
                    let rest = std::mem::replace(col, sealed);
                    col.extend(rest);
                }
            }
            for col in state.tail.iter_mut() {
                col.truncate(old_tail_len);
            }
            for m in state.measure_vals.iter_mut() {
                m.truncate(old_measure_len);
            }
            for (d, &len) in state.dicts.iter_mut().zip(&dict_lens) {
                d.truncate(len);
            }
            return Err(e);
        }

        // Commit: adopt staged segments, bump the epoch, publish a snapshot.
        for seg in staged {
            match seg {
                StagedSeg::Spilled(file, _cols) => {
                    state.sealed_spill.push(file);
                    state.total_spills += 1;
                }
                StagedSeg::Resident(cols) => state.sealed_cols.push(cols),
            }
        }
        let n_rows = state.current.table.n_rows() + cats.len();
        state.epoch_rows.push(n_rows);
        self.rebuild_snapshot(&mut state);
        Ok(state.current.clone())
    }

    /// Builds and installs the frozen snapshot for the state's newest epoch,
    /// folding the superseded snapshot's storage counters into the bases.
    fn rebuild_snapshot(&self, state: &mut LiveState) {
        {
            let old = &state.current.table;
            state.base_loads += old.loads();
            state.base_evictions += old.evictions();
            state.base_peak = state.base_peak.max(old.peak_resident());
        }

        let n_cols = self.schema.n_columns();
        let dicts: Vec<Arc<Dictionary>> = state.dicts.iter().cloned().map(Arc::new).collect();
        let header_measures: Vec<(String, Vec<f64>)> = self
            .measure_names
            .iter()
            .map(|n| (n.clone(), Vec::new()))
            .collect();
        let header = Arc::new(Table::from_parts(
            self.schema.clone(),
            dicts,
            vec![Vec::new(); n_cols],
            header_measures,
            0,
        ));
        let measures: Vec<(String, Vec<f64>)> = self
            .measure_names
            .iter()
            .cloned()
            .zip(state.measure_vals.iter().cloned())
            .collect();

        let c = self.rows_per_segment;
        let sealed_n = state.sealed_spill.len().max(state.sealed_cols.len());
        let tail_len = state.tail.first().map_or(0, Vec::len);
        let mut spans: Vec<Range<usize>> = (0..sealed_n).map(|i| i * c..(i + 1) * c).collect();
        // The tail span exists whenever it holds rows — and for the empty
        // table, so the snapshot has the canonical single `0..0` span.
        if tail_len > 0 || sealed_n == 0 {
            spans.push(sealed_n * c..sealed_n * c + tail_len);
        }
        let mut spill: Vec<Option<Arc<SpillFile>>> =
            state.sealed_spill.iter().cloned().map(Some).collect();
        spill.resize(spans.len(), None);

        let mut cache = Cache::default();
        let insert_resident = |cache: &mut Cache, i: usize, cols: Vec<Vec<u32>>| {
            cache.clock += 1;
            cache.resident.insert(
                i,
                CacheEntry {
                    seg: CachedSeg::Decoded(Arc::new(ShardSegment {
                        span: spans[i].clone(),
                        table: segment_table(&header, &measures, &spans[i], cols),
                    })),
                    last_used: cache.clock,
                },
            );
            cache.note_size();
        };
        if self.spill_root.is_none() {
            for (i, cols) in state.sealed_cols.iter().enumerate() {
                insert_resident(&mut cache, i, cols.clone());
            }
        }
        if tail_len > 0 || sealed_n == 0 {
            insert_resident(&mut cache, spans.len() - 1, state.tail.clone());
        }

        let epoch = (state.epoch_rows.len() - 1) as u64;
        state.current = LiveSnapshot {
            table: Arc::new(ShardedTable {
                header,
                measures,
                spans,
                spill,
                spill_root: self.spill_root.clone(),
                resident_budget: self.resident_budget,
                residency: self.residency,
                cache: Mutex::new(cache),
            }),
            epoch,
            epoch_rows: Arc::new(state.epoch_rows.clone()),
        };
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// Builds the resident [`Table`] of one segment: global-coded columns plus
/// the span's measure slices, sharing the header's schema and — by `Arc`,
/// not by clone — its global dictionaries: every segment of a table holds
/// pointer-identical dictionary handles, so segment count never multiplies
/// dictionary memory.
fn segment_table(
    header: &Table,
    measures: &[(String, Vec<f64>)],
    span: &Range<usize>,
    cols: Vec<Vec<u32>>,
) -> Table {
    let sliced: Vec<(String, Vec<f64>)> = measures
        .iter()
        .map(|(n, vals)| (n.clone(), vals[span.clone()].to_vec()))
        .collect();
    Table::from_parts(
        header.schema().clone(),
        header.dictionaries().to_vec(),
        cols,
        sliced,
        span.len(),
    )
}

// ---------------------------------------------------------------------------
// Spill encoding (v2, `SDDSHRD2`): per column a local dictionary (`remap`:
// global codes in first-appearance order) and the rows as local codes at the
// narrowest byte width that fits the shard-local cardinality. The fixed
// header carries a per-column **offset table** so a reader can `pread`
// exactly the column blobs it needs:
//
// ```text
// magic[8] = "SDDSHRD2"
// n_cols: u32 LE
// n_rows: u32 LE
// offsets: (n_cols + 1) × u64 LE     absolute file offsets; offsets[0] is
//                                    the header length, offsets[c]..
//                                    offsets[c+1] is column c's blob,
//                                    offsets[n_cols] is the file length
// column blob c:
//   remap_len: u32 LE
//   remap:     remap_len × u32 LE    local → global codes
//   width:     u8 ∈ {1, 2, 4}
//   data:      n_rows × width LE     packed local codes
// ```
//
// Encoding is a pure function of a segment's global codes, so two builds of
// the same rows produce byte-identical spill files (asserted in tests).
// ---------------------------------------------------------------------------

const SPILL_MAGIC: &[u8; 8] = b"SDDSHRD2";

/// Byte length of the fixed header (magic + shape + offset table).
fn header_len(n_cols: usize) -> usize {
    16 + 8 * (n_cols + 1)
}

/// Largest possible column blob for `n_rows` rows: 4-byte `remap_len`, a
/// remap of at most `n_rows` u32s (first-appearance order caps local
/// cardinality at the row count), the width byte, and 4-byte codes. Used to
/// reject corrupt offset tables before allocating read buffers from them.
fn max_blob_len(n_rows: usize) -> u64 {
    4 + 4 * n_rows as u64 + 1 + 4 * n_rows as u64
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn corrupt(msg: &str) -> TableError {
    TableError::Corrupt(msg.to_owned())
}

/// Encodes one shard's global-coded columns into the spill format.
fn encode_segment(cols: &[Vec<u32>], n_rows: usize) -> Vec<u8> {
    let mut blobs: Vec<Vec<u8>> = Vec::with_capacity(cols.len());
    let mut index: FxHashMap<u32, u32> = FxHashMap::default();
    for col in cols {
        debug_assert_eq!(col.len(), n_rows);
        index.clear();
        let mut remap: Vec<u32> = Vec::new();
        let locals: Vec<u32> = col
            .iter()
            .map(|&g| {
                *index.entry(g).or_insert_with(|| {
                    remap.push(g);
                    remap.len() as u32 - 1
                })
            })
            .collect();
        let mut blob = Vec::with_capacity(5 + 4 * remap.len() + locals.len());
        put_u32(&mut blob, remap.len() as u32);
        for &g in &remap {
            put_u32(&mut blob, g);
        }
        let width: u8 = if remap.len() <= 0x100 {
            1
        } else if remap.len() <= 0x1_0000 {
            2
        } else {
            4
        };
        blob.push(width);
        for &l in &locals {
            blob.extend_from_slice(&l.to_le_bytes()[..width as usize]);
        }
        blobs.push(blob);
    }
    let hdr = header_len(cols.len());
    let mut out = Vec::with_capacity(hdr + blobs.iter().map(Vec::len).sum::<usize>());
    out.extend_from_slice(SPILL_MAGIC);
    put_u32(&mut out, cols.len() as u32);
    put_u32(&mut out, n_rows as u32);
    let mut off = hdr as u64;
    out.extend_from_slice(&off.to_le_bytes());
    for b in &blobs {
        off += b.len() as u64;
        out.extend_from_slice(&off.to_le_bytes());
    }
    for b in &blobs {
        out.extend_from_slice(b);
    }
    out
}

fn write_segment(path: &std::path::Path, cols: &[Vec<u32>], n_rows: usize) -> io::Result<()> {
    let bytes = encode_segment(cols, n_rows);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    f.sync_data().ok(); // best effort; spill is rebuildable
    Ok(())
}

/// `u32` from the first 4 bytes of `s`; callers pass slices whose length
/// is already checked (`chunks_exact`, ranged indexing, `take`), so the
/// fixed-index form cannot fault where a `try_into().expect(..)` merely
/// promises not to.
fn le_u32(s: &[u8]) -> u32 {
    u32::from_le_bytes([s[0], s[1], s[2], s[3]])
}

/// `u64` from the first 8 bytes of `s`; same contract as [`le_u32`].
fn le_u64(s: &[u8]) -> u64 {
    u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
}

/// Validates magic + shape and returns the absolute offset table
/// (`n_cols + 1` entries; `offsets[c]..offsets[c+1]` is column `c`'s blob).
/// `hdr` must hold at least [`header_len`]`(expect_cols)` bytes.
fn parse_header(
    hdr: &[u8],
    expect_cols: usize,
    expect_rows: usize,
) -> Result<Vec<u64>, TableError> {
    if hdr.len() < header_len(expect_cols) {
        return Err(corrupt("truncated spill file"));
    }
    if &hdr[..8] != SPILL_MAGIC {
        return Err(corrupt("bad spill magic"));
    }
    let n_cols = le_u32(&hdr[8..12]) as usize;
    let n_rows = le_u32(&hdr[12..16]) as usize;
    if n_cols != expect_cols || n_rows != expect_rows {
        return Err(corrupt("spill shape mismatch"));
    }
    let offsets: Vec<u64> = hdr[16..16 + 8 * (n_cols + 1)]
        .chunks_exact(8)
        .map(le_u64)
        .collect();
    let sane = offsets[0] == header_len(n_cols) as u64
        && offsets
            .windows(2)
            .all(|w| w[0] <= w[1] && w[1] - w[0] <= max_blob_len(n_rows));
    if !sane {
        return Err(corrupt("bad spill offset table"));
    }
    Ok(offsets)
}

/// Parses one column blob (remap + width + packed codes), validating that
/// every local code indexes `remap` — after this, `remap[code as usize]`
/// never faults, which is what lets the pushdown scans index unchecked.
fn parse_column_blob(blob: &[u8], n_rows: usize) -> Result<RawColumn, TableError> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], TableError> {
        let s = blob
            .get(pos..pos + n)
            .ok_or_else(|| corrupt("truncated spill file"))?;
        pos += n;
        Ok(s)
    };
    let remap_len = le_u32(take(4)?) as usize;
    if remap_len > n_rows {
        // First-appearance order caps local cardinality at the row count.
        return Err(corrupt("remap larger than row count"));
    }
    let remap: Vec<u32> = take(remap_len * 4)?.chunks_exact(4).map(le_u32).collect();
    let width = take(1)?[0];
    if !matches!(width, 1 | 2 | 4) {
        return Err(corrupt("bad code width"));
    }
    let data = take(n_rows * width as usize)?;
    let trailing = pos != blob.len();
    let codes = match width {
        1 => {
            let v = data.to_vec();
            if remap_len < 0x100 && v.iter().any(|&c| c as usize >= remap_len) {
                return Err(corrupt("local code out of range"));
            }
            LocalCodes::W1(v)
        }
        2 => {
            let v: Vec<u16> = data
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            if remap_len < 0x1_0000 && v.iter().any(|&c| c as usize >= remap_len) {
                return Err(corrupt("local code out of range"));
            }
            LocalCodes::W2(v)
        }
        _ => {
            let v: Vec<u32> = data.chunks_exact(4).map(le_u32).collect();
            if v.iter().any(|&c| c as usize >= remap_len) {
                return Err(corrupt("local code out of range"));
            }
            LocalCodes::W4(v)
        }
    };
    if trailing {
        return Err(corrupt("spill column blob has trailing bytes"));
    }
    Ok(RawColumn { remap, codes })
}

/// Parses a whole spill file into raw (spill-coded) columns.
fn parse_segment(
    bytes: &[u8],
    expect_cols: usize,
    expect_rows: usize,
) -> Result<Vec<RawColumn>, TableError> {
    let offsets = parse_header(bytes, expect_cols, expect_rows)?;
    // parse_header returns exactly `expect_cols + 1` offsets.
    if offsets[expect_cols] != bytes.len() as u64 {
        return Err(corrupt("spill file length mismatch"));
    }
    (0..expect_cols)
        .map(|c| {
            let blob = &bytes[offsets[c] as usize..offsets[c + 1] as usize];
            parse_column_blob(blob, expect_rows)
        })
        .collect()
}

fn read_raw_segment(
    path: &std::path::Path,
    expect_cols: usize,
    expect_rows: usize,
) -> Result<Vec<RawColumn>, TableError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    parse_segment(&bytes, expect_cols, expect_rows)
}

/// Maps a short read to [`TableError::Corrupt`] (the file is shorter than
/// its offset table claims), anything else to [`TableError::Io`].
fn map_read_err(e: io::Error) -> TableError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        corrupt("truncated spill file")
    } else {
        TableError::from(e)
    }
}

/// Reads exactly `buf.len()` bytes at absolute `offset` — `pread` on unix
/// (positioned, no shared cursor, safe for concurrent readers of one
/// `File`), seek + read elsewhere.
fn read_at(f: &std::fs::File, offset: u64, buf: &mut [u8]) -> Result<(), TableError> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        f.read_exact_at(buf, offset).map_err(map_read_err)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom};
        let mut f = f;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf).map_err(map_read_err)
    }
}

/// Range-reads only `wanted` columns of a spill file: the fixed header and
/// offset table first, then one positioned read per requested column blob —
/// a residency miss that touches two columns costs two column reads, not a
/// whole-file parse.
fn read_spill_columns(
    path: &std::path::Path,
    wanted: &[usize],
    expect_cols: usize,
    expect_rows: usize,
) -> Result<Vec<RawColumn>, TableError> {
    let f = std::fs::File::open(path)?;
    let mut hdr = vec![0u8; header_len(expect_cols)];
    read_at(&f, 0, &mut hdr)?;
    let offsets = parse_header(&hdr, expect_cols, expect_rows)?;
    wanted
        .iter()
        .map(|&c| {
            assert!(c < expect_cols, "column {c} out of range");
            let (start, end) = (offsets[c], offsets[c + 1]);
            let mut blob = vec![0u8; (end - start) as usize];
            read_at(&f, start, &mut blob)?;
            parse_column_blob(&blob, expect_rows)
        })
        .collect()
}

/// Decodes raw spill columns into global-code columns via each column's
/// `remap` (the loader validated every local code, so indexing is total).
fn globalize(cols: &[RawColumn]) -> Vec<Vec<u32>> {
    cols.iter()
        .map(|col| match &col.codes {
            LocalCodes::W1(v) => v.iter().map(|&l| col.remap[l as usize]).collect(),
            LocalCodes::W2(v) => v.iter().map(|&l| col.remap[l as usize]).collect(),
            LocalCodes::W4(v) => v.iter().map(|&l| col.remap[l as usize]).collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// ShardedView
// ---------------------------------------------------------------------------

/// One maximal run of consecutive view positions whose rows live in a
/// single shard — the unit sharded scans iterate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRun {
    /// Shard index.
    pub shard: usize,
    /// Global view positions `[start, end)` of the run.
    pub positions: Range<usize>,
}

/// An owned, `Send + Sync` view over a [`ShardedTable`]'s rows — the
/// sharded counterpart of [`crate::OwnedTableView`], presenting the same
/// positional surface (`len` / `row_at` / `weight_at` / `row_ids` /
/// `weights` / `chunks`).
///
/// Chunk boundaries come from [`chunk_spans`] of the view length alone, so
/// [`ShardedView::chunks`] is independent of the shard layout — the same
/// chunk plan the monolithic view produces.
#[derive(Debug, Clone)]
pub struct ShardedView {
    table: Arc<ShardedTable>,
    /// `None` = all rows in order (position `i` *is* row `i`).
    rows: Option<Vec<RowId>>,
    weights: Option<Vec<f64>>,
}

impl ShardedView {
    /// A view over every row, unit weights.
    pub fn all(table: Arc<ShardedTable>) -> Self {
        Self {
            table,
            rows: None,
            weights: None,
        }
    }

    /// A view over an explicit row subset, unit weights.
    pub fn with_rows(table: Arc<ShardedTable>, rows: Vec<RowId>) -> Self {
        debug_assert!(rows.iter().all(|&r| (r as usize) < table.n_rows()));
        Self {
            table,
            rows: Some(rows),
            weights: None,
        }
    }

    /// A view over an explicit row subset with per-tuple weights. Panics if
    /// lengths differ.
    pub fn with_rows_and_weights(
        table: Arc<ShardedTable>,
        rows: Vec<RowId>,
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
        debug_assert!(rows.iter().all(|&r| (r as usize) < table.n_rows()));
        Self {
            table,
            rows: Some(rows),
            weights: Some(weights),
        }
    }

    /// The underlying sharded table.
    pub fn table(&self) -> &Arc<ShardedTable> {
        &self.table
    }

    /// Number of (row, weight) entries in the view.
    pub fn len(&self) -> usize {
        match &self.rows {
            None => self.table.n_rows(),
            Some(v) => v.len(),
        }
    }

    /// True if the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The row id at position `i`.
    #[inline]
    pub fn row_at(&self, i: usize) -> RowId {
        match &self.rows {
            None => i as RowId,
            Some(v) => v[i],
        }
    }

    /// The weight at position `i`.
    #[inline]
    pub fn weight_at(&self, i: usize) -> f64 {
        match &self.weights {
            Some(w) => w[i],
            None => 1.0,
        }
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().sum(),
            None => self.len() as f64,
        }
    }

    /// The explicit row-id slice, or `None` when the view covers all rows
    /// in order.
    #[inline]
    pub fn row_ids(&self) -> Option<&[RowId]> {
        self.rows.as_deref()
    }

    /// The per-tuple weight slice, or `None` for unit weights.
    #[inline]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Splits the view's **positions** into at most `max_chunks` spans via
    /// [`chunk_spans`] — a pure function of `len` and `max_chunks`,
    /// independent of the shard layout (asserted by the substrate property
    /// suite).
    pub fn chunks(&self, max_chunks: usize) -> Vec<Range<usize>> {
        chunk_spans(self.len(), max_chunks)
    }

    /// The view's positions grouped into maximal per-shard runs, in
    /// position order. For an all-rows view this is exactly one run per
    /// non-empty shard; for subsets, consecutive positions sharing a shard
    /// coalesce. Iterating runs in order visits positions `0..len` exactly
    /// once, in order.
    pub fn shard_runs(&self) -> Vec<ShardRun> {
        match &self.rows {
            None => self
                .table
                .spans()
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_empty())
                .map(|(shard, s)| ShardRun {
                    shard,
                    positions: s.clone(),
                })
                .collect(),
            Some(rows) => {
                let mut runs: Vec<ShardRun> = Vec::new();
                for (pos, &row) in rows.iter().enumerate() {
                    let shard = self.table.shard_of_row(row);
                    match runs.last_mut() {
                        Some(r) if r.shard == shard && r.positions.end == pos => {
                            r.positions.end = pos + 1;
                        }
                        _ => runs.push(ShardRun {
                            shard,
                            positions: pos..pos + 1,
                        }),
                    }
                }
                runs
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TableStore
// ---------------------------------------------------------------------------

/// A [`LiveTable`] handle plus the epoch snapshot this holder is pinned
/// to. Scans always run against the pinned snapshot — an ordinary frozen
/// [`ShardedTable`] — so a holder observes one consistent epoch until it
/// explicitly re-pins; appends land concurrently without disturbing it.
#[derive(Debug, Clone)]
pub struct LiveStore {
    live: Arc<LiveTable>,
    pinned: LiveSnapshot,
}

impl LiveStore {
    /// Pins the table's current snapshot.
    pub fn new(live: Arc<LiveTable>) -> Self {
        let pinned = live.snapshot();
        LiveStore { live, pinned }
    }

    /// The underlying live table.
    pub fn live(&self) -> &Arc<LiveTable> {
        &self.live
    }

    /// The snapshot this holder currently observes.
    pub fn pinned(&self) -> &LiveSnapshot {
        &self.pinned
    }

    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.pinned.epoch
    }

    /// The table's newest epoch (may be ahead of [`LiveStore::epoch`]).
    pub fn latest_epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// Re-pins to the table's current snapshot, returning the newly pinned
    /// epoch. Holders advance only through this method, at points of their
    /// choosing (the explorer syncs at operation prologues; see the
    /// determinism notes there).
    pub fn re_pin(&mut self) -> u64 {
        self.pinned = self.live.snapshot();
        self.pinned.epoch
    }

    /// Pins a specific snapshot — for holders that coordinate several
    /// pinned views (explorer + sample handler) onto one epoch: take one
    /// [`LiveTable::snapshot`] and pin it everywhere. The snapshot must
    /// come from this store's live table; pins never move backwards (an
    /// older snapshot is ignored).
    pub fn pin(&mut self, snap: LiveSnapshot) {
        if snap.epoch >= self.pinned.epoch {
            self.pinned = snap;
        }
    }
}

/// The storage behind a drill-down session: one monolithic in-memory
/// [`Table`], a [`ShardedTable`] whose segments may live on disk, or a
/// pinned snapshot of an append-only [`LiveTable`].
///
/// The sampling layer, explorer, and server hold a `TableStore` and
/// dispatch their full-table scans on it; all *metadata* access (schema,
/// dictionaries, cardinalities — everything weight functions and display
/// need) goes through [`TableStore::header`], which for sharded storage is
/// the always-resident zero-row header table.
///
/// Cloning a `TableStore::Live` clones the pin: the copy observes the same
/// epoch until it re-pins.
#[derive(Debug, Clone)]
pub enum TableStore {
    /// A monolithic in-memory table.
    Whole(Arc<Table>),
    /// A sharded table with an optional spill tier.
    Sharded(Arc<ShardedTable>),
    /// An append-only live table, pinned to one epoch's snapshot.
    Live(LiveStore),
}

impl TableStore {
    /// Total number of rows (at the pinned epoch, for live storage).
    pub fn n_rows(&self) -> usize {
        match self {
            TableStore::Whole(t) => t.n_rows(),
            TableStore::Sharded(s) => s.n_rows(),
            TableStore::Live(l) => l.pinned.table.n_rows(),
        }
    }

    /// Number of categorical columns.
    pub fn n_columns(&self) -> usize {
        match self {
            TableStore::Whole(t) => t.n_columns(),
            TableStore::Sharded(s) => s.n_columns(),
            TableStore::Live(l) => l.pinned.table.n_columns(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        match self {
            TableStore::Whole(t) => t.schema(),
            TableStore::Sharded(s) => s.schema(),
            TableStore::Live(l) => l.pinned.table.schema(),
        }
    }

    /// The metadata table: the table itself for [`TableStore::Whole`], the
    /// zero-row header for sharded and live storage. Carries schema,
    /// dictionaries, and measure names — never rows; do not scan it.
    pub fn header(&self) -> &Arc<Table> {
        match self {
            TableStore::Whole(t) => t,
            TableStore::Sharded(s) => s.header(),
            TableStore::Live(l) => l.pinned.table.header(),
        }
    }

    /// True for segmented storage (sharded or live) — every sharded scan
    /// path applies to the live pinned snapshot as well.
    pub fn is_sharded(&self) -> bool {
        matches!(self, TableStore::Sharded(_) | TableStore::Live(_))
    }

    /// The pinned epoch: `0` for frozen storage (a frozen table is a live
    /// table that never appends), the holder's pinned epoch for live.
    pub fn epoch(&self) -> u64 {
        match self {
            TableStore::Whole(_) | TableStore::Sharded(_) => 0,
            TableStore::Live(l) => l.epoch(),
        }
    }

    /// The pinned [`ShardedTable`] view for segmented storage (`None` for
    /// [`TableStore::Whole`]): the shared table for `Sharded`, the pinned
    /// snapshot for `Live`. Scans that match on `is_sharded` use this.
    pub fn as_sharded(&self) -> Option<&Arc<ShardedTable>> {
        match self {
            TableStore::Whole(_) => None,
            TableStore::Sharded(s) => Some(s),
            TableStore::Live(l) => Some(&l.pinned.table),
        }
    }

    /// The live handle, if this store is live.
    pub fn as_live(&self) -> Option<&LiveStore> {
        match self {
            TableStore::Live(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable live handle (for re-pinning), if this store is live.
    pub fn as_live_mut(&mut self) -> Option<&mut LiveStore> {
        match self {
            TableStore::Live(l) => Some(l),
            _ => None,
        }
    }
}

impl From<Arc<Table>> for TableStore {
    fn from(t: Arc<Table>) -> Self {
        TableStore::Whole(t)
    }
}

impl From<Arc<ShardedTable>> for TableStore {
    fn from(s: Arc<ShardedTable>) -> Self {
        TableStore::Sharded(s)
    }
}

impl From<Arc<LiveTable>> for TableStore {
    fn from(l: Arc<LiveTable>) -> Self {
        TableStore::Live(LiveStore::new(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schema, TableBuilder};

    fn t(n: usize) -> Table {
        let rows: Vec<[String; 2]> = (0..n)
            .map(|i| [format!("a{}", i % 5), format!("b{}", i % 3)])
            .collect();
        Table::from_rows(Schema::new(["A", "B"]).unwrap(), &rows).unwrap()
    }

    fn spill_dir() -> PathBuf {
        std::env::temp_dir()
    }

    #[test]
    fn spans_partition_rows_and_segments_match_source() {
        let table = t(23);
        let st = ShardedTable::from_table(&table, &ShardConfig::in_memory(4)).unwrap();
        assert_eq!(st.n_shards(), 4);
        let mut pos = 0;
        for (i, span) in st.spans().iter().enumerate() {
            assert_eq!(span.start, pos);
            pos = span.end;
            let seg = st.try_segment(i).unwrap();
            assert_eq!(seg.span(), span.clone());
            for c in 0..table.n_columns() {
                assert_eq!(seg.col(c), &table.column(c)[span.clone()]);
            }
        }
        assert_eq!(pos, table.n_rows());
        assert_eq!(st.n_rows(), table.n_rows());
    }

    #[test]
    fn spill_roundtrip_is_bit_identical_under_tiny_budget() {
        let table = t(50);
        let st =
            ShardedTable::from_table(&table, &ShardConfig::spilling(8, 1, spill_dir())).unwrap();
        // Cold cache: every first touch loads from disk.
        for pass in 0..2 {
            for i in 0..st.n_shards() {
                let seg = st.try_segment(i).unwrap();
                for c in 0..table.n_columns() {
                    assert_eq!(
                        seg.col(c),
                        &table.column(c)[seg.span()],
                        "pass {pass} shard {i} col {c}"
                    );
                }
            }
        }
        assert!(st.resident_count() <= 1);
        assert!(st.loads() >= st.n_shards() as u64, "loads {}", st.loads());
        assert!(st.evictions() > 0);
    }

    #[test]
    fn shard_of_row_matches_spans() {
        let table = t(17);
        let st = ShardedTable::from_table(&table, &ShardConfig::in_memory(5)).unwrap();
        for r in 0..17u32 {
            let s = st.shard_of_row(r);
            assert!(st.spans()[s].contains(&(r as usize)));
        }
    }

    #[test]
    fn gather_rows_preserves_codes_and_dictionaries() {
        let table = t(40);
        let st =
            ShardedTable::from_table(&table, &ShardConfig::spilling(6, 2, spill_dir())).unwrap();
        let rows: Vec<RowId> = vec![39, 0, 17, 17, 5, 31];
        let mini = st.try_gather_rows(&rows).unwrap();
        assert_eq!(mini.n_rows(), rows.len());
        for (i, &r) in rows.iter().enumerate() {
            for c in 0..table.n_columns() {
                assert_eq!(mini.code(i as u32, c), table.code(r, c), "row {r} col {c}");
            }
        }
        // Dictionaries preserved verbatim (no re-interning).
        for c in 0..table.n_columns() {
            assert_eq!(mini.cardinality(c), table.cardinality(c));
        }
    }

    #[test]
    fn sharded_view_chunks_follow_chunk_spans() {
        let table = t(29);
        let st = Arc::new(ShardedTable::from_table(&table, &ShardConfig::in_memory(7)).unwrap());
        let v = ShardedView::all(st.clone());
        assert_eq!(v.chunks(4), chunk_spans(29, 4));
        let sub = ShardedView::with_rows(st, vec![3, 4, 5, 20]);
        assert_eq!(sub.chunks(3), chunk_spans(4, 3));
    }

    #[test]
    fn shard_runs_cover_positions_in_order() {
        let table = t(30);
        let st = Arc::new(ShardedTable::from_table(&table, &ShardConfig::in_memory(4)).unwrap());
        let all = ShardedView::all(st.clone());
        let runs = all.shard_runs();
        assert_eq!(runs.len(), 4);
        let mut pos = 0;
        for r in &runs {
            assert_eq!(r.positions.start, pos);
            pos = r.positions.end;
        }
        assert_eq!(pos, 30);

        let sub = ShardedView::with_rows(st, vec![0, 1, 29, 2, 8, 9]);
        let runs = sub.shard_runs();
        let mut pos = 0;
        for r in &runs {
            assert_eq!(r.positions.start, pos);
            pos = r.positions.end;
            for p in r.positions.clone() {
                assert_eq!(sub.table().shard_of_row(sub.row_at(p)), r.shard);
            }
        }
        assert_eq!(pos, sub.len());
    }

    #[test]
    fn resident_budget_requires_spill() {
        let table = t(10);
        let cfg = ShardConfig {
            shards: 2,
            resident: 1,
            spill_dir: None,
            residency: Residency::Lru,
        };
        assert!(ShardedTable::from_table(&table, &cfg).is_err());
    }

    #[test]
    fn empty_table_shards_cleanly() {
        let table = t(0);
        let st = ShardedTable::from_table(&table, &ShardConfig::in_memory(3)).unwrap();
        assert_eq!(st.n_rows(), 0);
        let v = ShardedView::all(Arc::new(st));
        assert!(v.is_empty());
        assert!(v.shard_runs().is_empty());
    }

    #[test]
    fn spill_files_are_removed_on_drop() {
        let table = t(12);
        let dir;
        {
            let st = ShardedTable::from_table(&table, &ShardConfig::spilling(3, 1, spill_dir()))
                .unwrap();
            dir = st.spill_dir().unwrap().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spill subdirectory must be cleaned up");
    }

    /// Streams `table`'s rows through a [`ShardBuilder`] in row order.
    fn stream_clone(table: &Table, cfg: &ShardConfig) -> ShardedTable {
        let measure_names: Vec<String> = table.measure_names().map(str::to_owned).collect();
        let mut b = ShardBuilder::new(
            table.schema().clone(),
            measure_names.clone(),
            table.n_rows(),
            cfg,
        )
        .unwrap();
        let mvals: Vec<&[f64]> = measure_names
            .iter()
            .map(|n| table.measure(n).unwrap())
            .collect();
        for r in 0..table.n_rows() as RowId {
            let cats: Vec<&str> = (0..table.n_columns()).map(|c| table.value(r, c)).collect();
            let ms: Vec<f64> = mvals.iter().map(|v| v[r as usize]).collect();
            b.push_row(&cats, &ms).unwrap();
        }
        b.finish().unwrap()
    }

    fn t_measured(n: usize) -> Table {
        let mut b = TableBuilder::new(Schema::new(["A", "B"]).unwrap());
        for i in 0..n {
            b.push_row(&[format!("a{}", i % 5), format!("b{}", i % 3)])
                .unwrap();
        }
        b.add_measure("m", (0..n).map(|i| i as f64 * 0.5).collect())
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stream_build_matches_from_table_segments_and_spill_bytes() {
        let table = t_measured(37);
        for shards in [1, 3, 8] {
            for cfg in [
                ShardConfig::in_memory(shards),
                ShardConfig::spilling(shards, 1, spill_dir()),
            ] {
                let a = ShardedTable::from_table(&table, &cfg).unwrap();
                let b = stream_clone(&table, &cfg);
                assert_eq!(a.spans(), b.spans());
                for i in 0..a.n_shards() {
                    if let (Some(pa), Some(pb)) = (a.spill_path(i), b.spill_path(i)) {
                        assert_eq!(
                            std::fs::read(pa).unwrap(),
                            std::fs::read(pb).unwrap(),
                            "shard {i}: spill files differ"
                        );
                    }
                    let (sa, sb) = (a.try_segment(i).unwrap(), b.try_segment(i).unwrap());
                    for c in 0..table.n_columns() {
                        assert_eq!(sa.col(c), sb.col(c), "shard {i} col {c}");
                    }
                    assert_eq!(
                        sa.table().measure("m").unwrap(),
                        sb.table().measure("m").unwrap()
                    );
                }
                for c in 0..table.n_columns() {
                    assert_eq!(a.cardinality(c), b.cardinality(c));
                    let da: Vec<_> = a.dictionary(c).iter().collect();
                    let db: Vec<_> = b.dictionary(c).iter().collect();
                    assert_eq!(da, db, "col {c}: dictionaries differ");
                }
            }
        }
    }

    #[test]
    fn stream_build_spills_each_segment_exactly_once_and_stays_cold() {
        let table = t(60);
        let st = stream_clone(&table, &ShardConfig::spilling(6, 1, spill_dir()));
        assert_eq!(st.spills(), 6, "one spill write per shard");
        assert_eq!(st.loads(), 0, "a streaming build never reads back");
        assert_eq!(st.evictions(), 0);
        assert_eq!(st.peak_resident(), 0, "no segment was decoded in memory");
        // First scan pays the cold loads, one decoded segment at a time.
        for i in 0..st.n_shards() {
            let seg = st.try_segment(i).unwrap();
            assert_eq!(seg.span(), st.spans()[i].clone());
        }
        assert_eq!(st.loads(), 6);
        assert!(st.peak_resident() <= 2, "budget 1 + the in-flight pin");
    }

    #[test]
    fn stream_builder_rejects_row_count_mismatch() {
        let cfg = ShardConfig::in_memory(2);
        let schema = Schema::new(["A"]).unwrap();
        let mut b = ShardBuilder::new(schema.clone(), vec![], 2, &cfg).unwrap();
        b.push_row(&["x"], &[]).unwrap();
        assert!(matches!(
            b.finish(),
            Err(TableError::RowCount {
                declared: 2,
                got: 1
            })
        ));
        let mut b = ShardBuilder::new(schema, vec![], 1, &cfg).unwrap();
        b.push_row(&["x"], &[]).unwrap();
        assert!(matches!(
            b.push_row(&["y"], &[]),
            Err(TableError::RowCount { .. })
        ));
    }

    #[test]
    fn stream_builder_handles_zero_rows() {
        let st = ShardBuilder::new(
            Schema::new(["A"]).unwrap(),
            vec![],
            0,
            &ShardConfig::in_memory(3),
        )
        .unwrap()
        .finish()
        .unwrap();
        assert_eq!(st.n_rows(), 0);
        let table = t(0);
        let reference = ShardedTable::from_table(&table, &ShardConfig::in_memory(3)).unwrap();
        assert_eq!(st.spans(), reference.spans());
    }

    #[test]
    fn segments_share_global_dictionaries_by_arc() {
        let table = t(24);
        let st =
            ShardedTable::from_table(&table, &ShardConfig::spilling(4, 1, spill_dir())).unwrap();
        for i in 0..st.n_shards() {
            let seg = st.try_segment(i).unwrap();
            for c in 0..table.n_columns() {
                assert!(
                    Arc::ptr_eq(st.header().dictionary_arc(c), seg.table().dictionary_arc(c)),
                    "shard {i} col {c}: dictionary was cloned, not shared"
                );
            }
        }
    }

    #[test]
    fn sweep_residency_beats_lru_on_cyclic_scans() {
        let table = t(90);
        let loads_with = |residency: Residency| {
            let cfg = ShardConfig::spilling(6, 3, spill_dir()).with_residency(residency);
            let st = ShardedTable::from_table(&table, &cfg).unwrap();
            for _pass in 0..4 {
                for i in 0..st.n_shards() {
                    let seg = st.try_segment(i).unwrap();
                    assert_eq!(seg.span(), st.spans()[i].clone());
                }
            }
            st.loads()
        };
        let lru = loads_with(Residency::Lru);
        let sweep = loads_with(Residency::Sweep);
        // LRU misses on every access of a cyclic sweep; Sweep retains a
        // stable prefix of budget-1 segments that hit on later passes.
        assert_eq!(lru, 4 * 6, "cyclic sweep is LRU's worst case");
        assert!(
            sweep < lru,
            "sweep ({sweep} loads) must beat LRU ({lru} loads)"
        );
    }

    #[test]
    fn pinned_segments_stay_resident_and_count_against_budget() {
        let table = t(40);
        let st =
            ShardedTable::from_table(&table, &ShardConfig::spilling(4, 1, spill_dir())).unwrap();
        let s0 = st.try_segment(0).unwrap();
        let s1 = st.try_segment(1).unwrap();
        // Both are pinned: the cache must keep both (evicting would lie
        // about memory) and report the overshoot as pins.
        assert_eq!(st.pinned(), 2);
        assert_eq!(st.resident_count(), 2);
        assert!(st.resident_count() <= st.resident_budget() + st.pinned());
        assert_eq!(st.evictions(), 0, "pinned segments must not be evicted");
        drop(s0);
        drop(s1);
        // With pins released, the next access shrinks back to the budget.
        let _s2 = st.try_segment(2).unwrap();
        assert_eq!(st.resident_count(), 1);
        assert_eq!(st.pinned(), 1);
    }

    #[test]
    fn segment_data_serves_raw_form_and_upgrades_in_place() {
        let table = t(50);
        let st =
            ShardedTable::from_table(&table, &ShardConfig::spilling(5, 2, spill_dir())).unwrap();
        for i in 0..st.n_shards() {
            let data = st.segment_data(i).unwrap();
            let raw = match &data {
                SegmentData::Raw(r) => r,
                SegmentData::Decoded(_) => panic!("cold miss must load the raw form"),
            };
            assert_eq!(raw.span(), st.spans()[i].clone());
            for c in 0..table.n_columns() {
                let col = raw.col(c);
                assert_eq!(col.codes().len(), st.spans()[i].len());
                for (local, global) in st.spans()[i].clone().enumerate() {
                    assert_eq!(col.global_at(local), table.code(global as RowId, c));
                }
                // Every remapped global code round-trips through the local
                // translation, and absent codes report None.
                for (l, &g) in col.remap().iter().enumerate() {
                    assert_eq!(col.local_of_global(g), Some(l as u32));
                }
                let absent = table.cardinality(c) as u32 + 7;
                assert_eq!(col.local_of_global(absent), None);
            }
        }
        let loads = st.loads();
        assert!(loads >= st.n_shards() as u64);
        // Upgrading a still-cached raw entry decodes in memory: no new load.
        let last = st.n_shards() - 1;
        let seg = st.try_segment(last).unwrap();
        assert_eq!(st.loads(), loads, "raw upgrade must not re-read the file");
        assert_eq!(seg.col(0), &table.column(0)[st.spans()[last].clone()]);
        match st.cached_data(last) {
            Some(SegmentData::Decoded(_)) => {}
            other => panic!("entry must be upgraded in place, got {other:?}"),
        }
    }

    #[test]
    fn read_columns_is_transient_and_counts_loads() {
        let table = t(60);
        let st =
            ShardedTable::from_table(&table, &ShardConfig::spilling(4, 1, spill_dir())).unwrap();
        let loads0 = st.loads();
        let cols = st.read_columns(2, &[1]).unwrap();
        assert_eq!(cols.len(), 1);
        for (local, global) in st.spans()[2].clone().enumerate() {
            assert_eq!(cols[0].global_at(local), table.code(global as RowId, 1));
        }
        assert_eq!(
            st.loads(),
            loads0 + 1,
            "a range read still counts as a load"
        );
        assert!(
            st.cached_data(2).is_none(),
            "transient reads must not populate the cache"
        );
        assert_eq!(st.resident_count(), 0);
    }

    #[test]
    fn corrupt_spill_files_error_instead_of_panicking() {
        let table = t(40);
        let st =
            ShardedTable::from_table(&table, &ShardConfig::spilling(4, 1, spill_dir())).unwrap();
        let path = st.spill_path(1).unwrap().to_path_buf();
        let bytes = std::fs::read(&path).unwrap();

        // Truncation: the file is shorter than its offset table claims.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        match st.try_segment(1) {
            Err(TableError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(st.segment_data(1).is_err());
        // The pread path hits the same wall one column at a time.
        let last_col = table.n_columns() - 1;
        assert!(matches!(
            st.read_columns(1, &[last_col]),
            Err(TableError::Corrupt(_))
        ));

        // Garbled magic.
        let mut garbled = bytes.clone();
        garbled[0] ^= 0xFF;
        std::fs::write(&path, &garbled).unwrap();
        assert!(matches!(st.try_segment(1), Err(TableError::Corrupt(m)) if m.contains("magic")));

        // Restoring the bytes restores the segment: errors are not sticky.
        std::fs::write(&path, &bytes).unwrap();
        let seg = st.try_segment(1).unwrap();
        assert_eq!(seg.col(0), &table.column(0)[st.spans()[1].clone()]);
        // Other shards were never affected.
        let s0 = st.try_segment(0).unwrap();
        assert_eq!(s0.span(), st.spans()[0].clone());
    }

    #[test]
    fn table_store_surfaces_metadata() {
        let table = Arc::new(t(9));
        let whole = TableStore::from(table.clone());
        assert_eq!(whole.n_rows(), 9);
        assert!(!whole.is_sharded());
        let st = Arc::new(ShardedTable::from_table(&table, &ShardConfig::in_memory(2)).unwrap());
        let sharded = TableStore::from(st);
        assert!(sharded.is_sharded());
        assert_eq!(sharded.n_rows(), 9);
        assert_eq!(sharded.n_columns(), 2);
        assert_eq!(sharded.header().n_rows(), 0, "header carries no rows");
        assert_eq!(sharded.header().cardinality(0), table.cardinality(0));
    }

    // -----------------------------------------------------------------------
    // Live (append-only) tables
    // -----------------------------------------------------------------------

    fn live_rows(n: usize) -> Vec<[String; 2]> {
        (0..n)
            .map(|i| [format!("a{}", i % 5), format!("b{}", i % 3)])
            .collect()
    }

    /// Materializes every row of a sharded table as strings.
    fn gather_all(st: &ShardedTable) -> Vec<Vec<String>> {
        let rows: Vec<RowId> = (0..st.n_rows() as RowId).collect();
        let t = st.try_gather_rows(&rows).unwrap();
        (0..t.n_rows() as RowId)
            .map(|r| {
                (0..t.n_columns())
                    .map(|c| t.value(r, c).to_owned())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn live_append_publishes_epochs_and_rows() {
        let live = LiveTable::new(
            Schema::new(["A", "B"]).unwrap(),
            vec![],
            &LiveTableConfig::in_memory(4),
        )
        .unwrap();
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.n_rows(), 0);
        assert_eq!(live.snapshot().table.n_rows(), 0);

        let rows = live_rows(6);
        let snap1 = live.try_append(&rows[..3], &[]).unwrap();
        assert_eq!((snap1.epoch, snap1.table.n_rows()), (1, 3));
        let snap2 = live.try_append(&rows[3..], &[]).unwrap();
        assert_eq!((snap2.epoch, snap2.table.n_rows()), (2, 6));
        assert_eq!(&*snap2.epoch_rows, &[0, 3, 6]);

        let expect: Vec<Vec<String>> = rows.iter().map(|r| r.to_vec()).collect();
        assert_eq!(gather_all(&snap2.table), expect);
        // The superseded snapshot still observes its own epoch.
        assert_eq!(gather_all(&snap1.table), expect[..3]);
        assert_eq!(snap1.table.header().cardinality(0), 3, "a0..a2 at epoch 1");
        assert_eq!(snap2.table.header().cardinality(0), 5);

        // An empty batch is a deliberate epoch bump.
        let snap3 = live.try_append::<[String; 2], String>(&[], &[]).unwrap();
        assert_eq!((snap3.epoch, snap3.table.n_rows()), (3, 6));
    }

    #[test]
    fn live_append_carries_measures() {
        let live = LiveTable::new(
            Schema::new(["A", "B"]).unwrap(),
            vec!["m".to_owned()],
            &LiveTableConfig::in_memory(3),
        )
        .unwrap();
        let rows = live_rows(7);
        let ms: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64 * 1.5]).collect();
        live.try_append(&rows[..4], &ms[..4]).unwrap();
        let snap = live.try_append(&rows[4..], &ms[4..]).unwrap();
        let all: Vec<RowId> = (0..7).collect();
        let t = snap.table.try_gather_rows(&all).unwrap();
        let got = t.measure("m").unwrap();
        let want: Vec<f64> = (0..7).map(|i| i as f64 * 1.5).collect();
        assert_eq!(got, &want[..]);
    }

    #[test]
    fn live_append_rejects_malformed_rows_without_state_change() {
        let live = LiveTable::new(
            Schema::new(["A", "B"]).unwrap(),
            vec!["m".to_owned()],
            &LiveTableConfig::in_memory(4),
        )
        .unwrap();
        let bad = vec![vec!["only-one".to_owned()]];
        assert!(matches!(
            live.try_append(&bad, &[vec![1.0]]),
            Err(TableError::ArityMismatch { .. })
        ));
        let rows = live_rows(2);
        // Wrong measure arity.
        assert!(matches!(
            live.try_append(&rows, &[vec![1.0]]),
            Err(TableError::ArityMismatch { .. })
        ));
        assert!(matches!(
            live.try_append(&rows, &[vec![1.0, 2.0], vec![3.0, 4.0]]),
            Err(TableError::ArityMismatch { .. })
        ));
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.n_rows(), 0);
    }

    /// Satellite: appends landing exactly on / one before / one after a
    /// segment boundary produce sealed spill files byte-identical to (a) a
    /// single append of all rows and (b) — at exact multiples of the
    /// segment size — `ShardedTable::from_table` of the grown table, whose
    /// `chunk_spans` layout coincides with the live fixed-size layout.
    #[test]
    fn live_seal_boundaries_are_byte_identical_to_rebuild() {
        let c = 8usize;
        let k = 3usize;
        let all = live_rows(k * c); // 24 rows; boundaries at 8 and 16
        let cfg = LiveTableConfig::spilling(c, 1, spill_dir());

        // Grow with batches landing one-before / exactly-on / one-after
        // segment boundaries: 7, +1 (=8), +1 (=9), +7 (=16), +8 (=24).
        let grown = LiveTable::new(Schema::new(["A", "B"]).unwrap(), vec![], &cfg).unwrap();
        for batch in [&all[..7], &all[7..8], &all[8..9], &all[9..16], &all[16..]] {
            grown.try_append(batch, &[]).unwrap();
        }
        assert_eq!(grown.segments_sealed(), k);
        assert_eq!(grown.n_rows(), k * c);

        // One-shot rebuild of the same rows.
        let rebuilt = LiveTable::new(Schema::new(["A", "B"]).unwrap(), vec![], &cfg).unwrap();
        rebuilt.try_append(&all, &[]).unwrap();

        // From-scratch frozen build: chunk_spans(k*c, k) = k equal spans.
        let rows_owned: Vec<[String; 2]> = all.clone();
        let frozen_src = Table::from_rows(Schema::new(["A", "B"]).unwrap(), &rows_owned).unwrap();
        let frozen =
            ShardedTable::from_table(&frozen_src, &ShardConfig::spilling(k, 1, spill_dir()))
                .unwrap();

        let gs = grown.snapshot().table;
        let rs = rebuilt.snapshot().table;
        for i in 0..k {
            let g = std::fs::read(gs.spill_path(i).unwrap()).unwrap();
            let r = std::fs::read(rs.spill_path(i).unwrap()).unwrap();
            let f = std::fs::read(frozen.spill_path(i).unwrap()).unwrap();
            assert_eq!(g, r, "segment {i}: grown vs one-shot rebuild");
            assert_eq!(g, f, "segment {i}: grown vs frozen from_table");
        }
        // And the visible rows agree everywhere.
        let expect: Vec<Vec<String>> = all.iter().map(|r| r.to_vec()).collect();
        assert_eq!(gather_all(&gs), expect);
        assert_eq!(gather_all(&frozen), expect);
    }

    /// The unsealed tail has no spill file and must never be evicted, even
    /// under the tightest resident budget.
    #[test]
    fn live_tail_survives_eviction_pressure() {
        let c = 4usize;
        let live = LiveTable::new(
            Schema::new(["A", "B"]).unwrap(),
            vec![],
            &LiveTableConfig::spilling(c, 1, spill_dir()),
        )
        .unwrap();
        let rows = live_rows(3 * c + 2); // 3 sealed segments + 2-row tail
        let snap = live.try_append(&rows, &[]).unwrap();
        let st = &snap.table;
        assert_eq!(st.n_shards(), 4);
        assert!(st.spill_path(3).is_none(), "tail has no spill file");

        // Sweep all shards several times under resident budget 1.
        let expect: Vec<Vec<String>> = rows.iter().map(|r| r.to_vec()).collect();
        for _ in 0..3 {
            assert_eq!(&gather_all(st), &expect);
        }
        st.evict_all();
        // The tail is still resident (evict_all skips spill-less shards)…
        let (resident, _) = st.resident_and_pinned();
        assert!(resident >= 1, "tail must stay resident");
        // …and still serves its rows.
        let tail = st.try_segment(3).unwrap();
        assert_eq!(tail.span(), 3 * c..3 * c + 2);
    }

    /// A failed seal (I/O error mid-append) rolls the table back to the
    /// previous epoch: no rows, no epoch bump, and — critically for
    /// rebuild parity — no leaked dictionary codes.
    #[test]
    fn live_failed_append_rolls_back_cleanly() {
        let c = 4usize;
        let live = LiveTable::new(
            Schema::new(["A", "B"]).unwrap(),
            vec![],
            &LiveTableConfig::spilling(c, 1, spill_dir()),
        )
        .unwrap();
        let rows = live_rows(c + 1);
        live.try_append(&rows[..2], &[]).unwrap();

        // Block the next seal: a directory where the segment file must go.
        let dir = live.snapshot().table.spill_dir().unwrap().to_path_buf();
        let blocker = dir.join(segment_file_name(0));
        std::fs::remove_file(&blocker).ok(); // not yet sealed ⇒ absent
        std::fs::create_dir(&blocker).unwrap();
        let err = live.try_append(&rows[2..], &[]);
        assert!(matches!(err, Err(TableError::Io(_))), "got {err:?}");

        // Rolled back: same epoch, same rows, dictionaries un-grown.
        assert_eq!(live.epoch(), 1);
        assert_eq!(live.n_rows(), 2);
        let snap = live.snapshot();
        assert_eq!(snap.table.header().cardinality(0), 2);

        // Unblock and retry; the grown table must match a one-shot rebuild.
        std::fs::remove_dir(&blocker).unwrap();
        let snap = live.try_append(&rows[2..], &[]).unwrap();
        assert_eq!((snap.epoch, snap.table.n_rows()), (2, c + 1));
        let rebuilt = LiveTable::new(
            Schema::new(["A", "B"]).unwrap(),
            vec![],
            &LiveTableConfig::spilling(c, 1, spill_dir()),
        )
        .unwrap();
        let rsnap = rebuilt.try_append(&rows, &[]).unwrap();
        assert_eq!(
            std::fs::read(snap.table.spill_path(0).unwrap()).unwrap(),
            std::fs::read(rsnap.table.spill_path(0).unwrap()).unwrap(),
            "post-recovery seal must be byte-identical to a rebuild"
        );
        let expect: Vec<Vec<String>> = rows.iter().map(|r| r.to_vec()).collect();
        assert_eq!(gather_all(&snap.table), expect);
    }

    /// Snapshots share sealed spill files by `Arc`: superseded epochs stay
    /// scannable, and the directory disappears only when the last holder
    /// (live table or snapshot) drops.
    #[test]
    fn live_snapshots_share_segments_and_cleanup_is_refcounted() {
        let c = 4usize;
        let rows = live_rows(2 * c + 1);
        let dir;
        let old;
        {
            let live = LiveTable::new(
                Schema::new(["A", "B"]).unwrap(),
                vec![],
                &LiveTableConfig::spilling(c, 1, spill_dir()),
            )
            .unwrap();
            old = live.try_append(&rows[..c + 1], &[]).unwrap();
            let new = live.try_append(&rows[c + 1..], &[]).unwrap();
            dir = new.table.spill_dir().unwrap().to_path_buf();
            assert_eq!(
                old.table.spill_path(0).unwrap(),
                new.table.spill_path(0).unwrap(),
                "sealed segment 0 is shared, not re-written"
            );
            // Drop `live` and `new`; `old` keeps its files alive.
        }
        assert!(dir.exists(), "old snapshot still pins the spill dir");
        let expect: Vec<Vec<String>> = rows[..c + 1].iter().map(|r| r.to_vec()).collect();
        assert_eq!(gather_all(&old.table), expect);
        drop(old);
        assert!(!dir.exists(), "last holder dropped ⇒ dir removed");
    }

    #[test]
    fn live_storage_counters_are_monotonic_across_epochs() {
        let c = 4usize;
        let live = LiveTable::new(
            Schema::new(["A", "B"]).unwrap(),
            vec![],
            &LiveTableConfig::spilling(c, 1, spill_dir()),
        )
        .unwrap();
        let rows = live_rows(3 * c);
        let mut last = (0u64, 0u64, 0u64, 0usize);
        for batch in rows.chunks(c + 1) {
            let snap = live.try_append(batch, &[]).unwrap();
            let _ = gather_all(&snap.table); // force loads/evictions
            let now = live.storage_counters();
            assert!(now.0 >= last.0, "loads must not go backwards");
            assert!(now.1 >= last.1, "evictions must not go backwards");
            assert!(now.2 >= last.2, "spills must not go backwards");
            assert!(now.3 >= last.3, "peak must not go backwards");
            last = now;
        }
        assert_eq!(last.2, 3, "one spill per sealed segment");
    }

    #[test]
    fn live_store_pins_and_repins_epochs() {
        let live = Arc::new(
            LiveTable::new(
                Schema::new(["A", "B"]).unwrap(),
                vec![],
                &LiveTableConfig::in_memory(4),
            )
            .unwrap(),
        );
        let mut store = TableStore::from(Arc::clone(&live));
        assert!(store.is_sharded(), "live stores scan via the sharded paths");
        assert_eq!(store.epoch(), 0);
        let rows = live_rows(5);
        live.try_append(&rows, &[]).unwrap();
        // The pin holds until the holder re-pins.
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.n_rows(), 0);
        assert_eq!(store.as_live().unwrap().latest_epoch(), 1);
        let e = store.as_live_mut().unwrap().re_pin();
        assert_eq!(e, 1);
        assert_eq!(store.n_rows(), 5);
        assert_eq!(store.header().cardinality(0), 5);
        // A clone carries the pin, not the live head.
        let clone = store.clone();
        live.try_append(&rows[..1], &[]).unwrap();
        assert_eq!(clone.epoch(), 1);
        assert_eq!(store.as_sharded().unwrap().n_rows(), 5);
    }
}
