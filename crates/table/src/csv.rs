//! A small, self-contained CSV reader/writer.
//!
//! Supports the RFC-4180 essentials: comma separation, `"` quoting, embedded
//! quotes doubled (`""`), embedded commas and newlines inside quoted fields,
//! and both `\n` and `\r\n` record separators. Deliberately hand-rolled to
//! keep the workspace dependency-free (see DESIGN.md §2).

use crate::{Schema, Table, TableBuilder, TableError};

/// Parses CSV text (first record = header) into a [`Table`].
///
/// Every column is ingested as categorical. To treat a numeric column as a
/// measure (for `Sum` aggregates), use [`read_csv_with_measures`].
pub fn read_csv(input: &str) -> Result<Table, TableError> {
    read_csv_with_measures(input, &[])
}

/// Parses CSV text, routing the named columns into numeric measure columns
/// instead of categorical columns.
pub fn read_csv_with_measures(input: &str, measures: &[&str]) -> Result<Table, TableError> {
    let records = parse_records(input)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or(TableError::Empty)?;

    let mut cat_idx: Vec<usize> = Vec::new();
    let mut measure_idx: Vec<(usize, String)> = Vec::new();
    for (i, name) in header.iter().enumerate() {
        if measures.contains(&name.as_str()) {
            measure_idx.push((i, name.clone()));
        } else {
            cat_idx.push(i);
        }
    }
    for m in measures {
        if !header.iter().any(|h| h == m) {
            return Err(TableError::UnknownMeasure((*m).to_owned()));
        }
    }

    let schema = Schema::new(cat_idx.iter().map(|&i| header[i].clone()))?;
    let mut builder = TableBuilder::new(schema);
    let mut measure_vals: Vec<Vec<f64>> = vec![Vec::new(); measure_idx.len()];

    for (line_no, record) in iter.enumerate() {
        if record.len() != header.len() {
            return Err(TableError::Csv {
                line: line_no + 2,
                message: format!("expected {} fields, got {}", header.len(), record.len()),
            });
        }
        let row_buf: Vec<&str> = cat_idx.iter().map(|&i| record[i].as_str()).collect();
        builder.push_row(&row_buf)?;
        for (slot, (i, _)) in measure_vals.iter_mut().zip(&measure_idx) {
            let raw = record[*i].trim();
            let v: f64 = raw
                .parse()
                .map_err(|_| TableError::ParseNumber(raw.to_owned()))?;
            slot.push(v);
        }
    }

    for (vals, (_, name)) in measure_vals.into_iter().zip(measure_idx) {
        builder.add_measure(name, vals)?;
    }
    builder.build()
}

/// Serializes a table (categorical columns then measures) to CSV text.
pub fn write_csv(table: &Table) -> String {
    let mut out = String::new();
    let n_cat = table.n_columns();
    let measure_names: Vec<&str> = table.measure_names().collect();

    for c in 0..n_cat {
        if c > 0 {
            out.push(',');
        }
        write_field(&mut out, table.schema().column_name(c));
    }
    for name in &measure_names {
        if n_cat > 0 || !out.is_empty() {
            out.push(',');
        }
        write_field(&mut out, name);
    }
    out.push('\n');

    let measures: Vec<&[f64]> = measure_names
        .iter()
        .map(|n| table.measure(n).expect("name came from the table"))
        .collect();

    for row in 0..table.n_rows() as u32 {
        let mut first = true;
        for c in 0..n_cat {
            if !first {
                out.push(',');
            }
            first = false;
            write_field(&mut out, table.value(row, c));
        }
        for m in &measures {
            if !first {
                out.push(',');
            }
            first = false;
            let v = m[row as usize];
            out.push_str(&format_number(v));
        }
        out.push('\n');
    }
    out
}

fn format_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_field(out: &mut String, field: &str) {
    let needs_quote =
        field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r');
    if needs_quote {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Splits CSV text into records of fields, honoring quoting.
fn parse_records(input: &str) -> Result<Vec<Vec<String>>, TableError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    // True once the current record has any content (field chars or a comma).
    let mut any_content = false;

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(ch);
                }
                _ => field.push(ch),
            }
            continue;
        }
        match ch {
            '"' => {
                if !field.is_empty() {
                    return Err(TableError::Csv {
                        line,
                        message: "quote in the middle of an unquoted field".to_owned(),
                    });
                }
                in_quotes = true;
                any_content = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                any_content = true;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                end_record(&mut records, &mut record, &mut field, &mut any_content);
                line += 1;
            }
            '\n' => {
                end_record(&mut records, &mut record, &mut field, &mut any_content);
                line += 1;
            }
            _ => {
                field.push(ch);
                any_content = true;
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv {
            line,
            message: "unterminated quoted field".to_owned(),
        });
    }
    end_record(&mut records, &mut record, &mut field, &mut any_content);
    Ok(records)
}

fn end_record(
    records: &mut Vec<Vec<String>>,
    record: &mut Vec<String>,
    field: &mut String,
    any_content: &mut bool,
) {
    if *any_content || !record.is_empty() {
        record.push(std::mem::take(field));
        records.push(std::mem::take(record));
    }
    *any_content = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let csv = "Store,Product\nWalmart,cookies\nTarget,bicycles\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value(0, 0), "Walmart");
        assert_eq!(write_csv(&t), csv);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\nplain,field\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.value(0, 0), "x,y");
        assert_eq!(t.value(0, 1), "he said \"hi\"");
        // Roundtrip re-quotes correctly.
        let back = write_csv(&t);
        let t2 = read_csv(&back).unwrap();
        assert_eq!(t2.value(0, 1), "he said \"hi\"");
    }

    #[test]
    fn embedded_newline_in_quoted_field() {
        let csv = "a\n\"line1\nline2\"\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.value(0, 0), "line1\nline2");
    }

    #[test]
    fn crlf_line_endings() {
        let csv = "a,b\r\n1,2\r\n3,4\r\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value(1, 1), "4");
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = read_csv("a\nx").unwrap();
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let err = read_csv("a,b\n1,2\n3\n").unwrap_err();
        match err {
            TableError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(read_csv("").unwrap_err(), TableError::Empty);
    }

    #[test]
    fn measures_are_parsed_as_numbers() {
        let csv = "Store,Sales\nWalmart,100\nTarget,250.5\n";
        let t = read_csv_with_measures(csv, &["Sales"]).unwrap();
        assert_eq!(t.n_columns(), 1);
        assert_eq!(t.measure("Sales").unwrap(), &[100.0, 250.5]);
    }

    #[test]
    fn bad_measure_value_is_parse_error() {
        let csv = "Store,Sales\nWalmart,lots\n";
        assert!(matches!(
            read_csv_with_measures(csv, &["Sales"]),
            Err(TableError::ParseNumber(_))
        ));
    }

    #[test]
    fn unknown_measure_name_is_error() {
        let csv = "Store\nWalmart\n";
        assert!(matches!(
            read_csv_with_measures(csv, &["Sales"]),
            Err(TableError::UnknownMeasure(_))
        ));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(matches!(
            read_csv("a\n\"oops\n"),
            Err(TableError::Csv { .. })
        ));
    }

    #[test]
    fn stray_quote_is_error() {
        assert!(matches!(
            read_csv("a\nfoo\"bar\n"),
            Err(TableError::Csv { .. })
        ));
    }

    #[test]
    fn measure_roundtrip_in_write_csv() {
        let csv = "Store,Sales\nWalmart,100\n";
        let t = read_csv_with_measures(csv, &["Sales"]).unwrap();
        let out = write_csv(&t);
        assert_eq!(out, "Store,Sales\nWalmart,100\n");
    }

    #[test]
    fn empty_fields_are_preserved() {
        let t = read_csv("a,b\n,x\n").unwrap();
        assert_eq!(t.value(0, 0), "");
        assert_eq!(t.value(0, 1), "x");
    }
}
