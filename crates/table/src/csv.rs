//! A small, self-contained CSV reader/writer.
//!
//! Supports the RFC-4180 essentials: comma separation, `"` quoting, embedded
//! quotes doubled (`""`), embedded commas and newlines inside quoted fields,
//! and both `\n` and `\r\n` record separators. Deliberately hand-rolled to
//! keep the workspace dependency-free (see DESIGN.md §2).
//!
//! Two ingest surfaces share one record parser ([`RecordReader`], a
//! pull-based reader over any [`BufRead`]): [`read_csv`] materializes a
//! monolithic [`Table`], and [`stream_csv_file`] streams a file straight
//! into a [`ShardedTable`] through a [`ShardBuilder`] — never holding more
//! than one unsealed segment (plus dictionaries) in memory.

use crate::shard::{ShardBuilder, ShardConfig, ShardedTable};
use crate::{Schema, Table, TableBuilder, TableError};
use std::fs::File;
use std::io::{self, BufRead, BufReader};

/// Parses CSV text (first record = header) into a [`Table`].
///
/// Every column is ingested as categorical. To treat a numeric column as a
/// measure (for `Sum` aggregates), use [`read_csv_with_measures`].
pub fn read_csv(input: &str) -> Result<Table, TableError> {
    read_csv_with_measures(input, &[])
}

/// Categorical column indices plus the `(record index, name)` routes of
/// the requested measure columns.
type ColumnRouting = (Vec<usize>, Vec<(usize, String)>);

/// Splits a CSV header into the categorical column indices and the
/// `(record index, name)` routes of the requested measure columns —
/// shared by the materializing and streaming ingest paths so both produce
/// the same schema and measure order for the same input.
fn route_columns(header: &[String], measures: &[&str]) -> Result<ColumnRouting, TableError> {
    let mut cat_idx: Vec<usize> = Vec::new();
    let mut measure_idx: Vec<(usize, String)> = Vec::new();
    for (i, name) in header.iter().enumerate() {
        if measures.contains(&name.as_str()) {
            measure_idx.push((i, name.clone()));
        } else {
            cat_idx.push(i);
        }
    }
    for m in measures {
        if !header.iter().any(|h| h == m) {
            return Err(TableError::UnknownMeasure((*m).to_owned()));
        }
    }
    Ok((cat_idx, measure_idx))
}

/// Checks one data record's arity against the header, reporting the input
/// line the record started on — shared by both ingest paths so identical
/// malformed input yields identical errors.
fn check_arity(record: &[String], header_len: usize, start_line: usize) -> Result<(), TableError> {
    if record.len() != header_len {
        return Err(TableError::Csv {
            line: start_line,
            message: format!("expected {header_len} fields, got {}", record.len()),
        });
    }
    Ok(())
}

/// Parses one record's measure fields in route order into `out`.
fn parse_measures(
    record: &[String],
    measure_idx: &[(usize, String)],
    out: &mut Vec<f64>,
) -> Result<(), TableError> {
    out.clear();
    for (i, _) in measure_idx {
        let raw = record[*i].trim();
        let v: f64 = raw
            .parse()
            .map_err(|_| TableError::ParseNumber(raw.to_owned()))?;
        out.push(v);
    }
    Ok(())
}

/// Parses CSV text, routing the named columns into numeric measure columns
/// instead of categorical columns.
pub fn read_csv_with_measures(input: &str, measures: &[&str]) -> Result<Table, TableError> {
    let mut reader = RecordReader::new(input.as_bytes());
    let header = reader.next().ok_or(TableError::Empty)??;
    let (cat_idx, measure_idx) = route_columns(&header, measures)?;

    let schema = Schema::new(cat_idx.iter().map(|&i| header[i].clone()))?;
    let mut builder = TableBuilder::new(schema);
    let mut measure_vals: Vec<Vec<f64>> = vec![Vec::new(); measure_idx.len()];
    let mut measure_buf: Vec<f64> = Vec::with_capacity(measure_idx.len());

    while let Some(record) = reader.next() {
        let record = record?;
        check_arity(&record, header.len(), reader.record_line())?;
        let row_buf: Vec<&str> = cat_idx.iter().map(|&i| record[i].as_str()).collect();
        builder.push_row(&row_buf)?;
        parse_measures(&record, &measure_idx, &mut measure_buf)?;
        for (slot, &v) in measure_vals.iter_mut().zip(&measure_buf) {
            slot.push(v);
        }
    }

    for (vals, (_, name)) in measure_vals.into_iter().zip(measure_idx) {
        builder.add_measure(name, vals)?;
    }
    builder.build()
}

/// Streams a CSV file into a [`ShardedTable`] without ever materializing
/// the monolithic [`Table`] — the out-of-core ingest path.
///
/// Pass 1 routes the header (a bad measure name fails immediately) and
/// counts the data records with a field-free byte scan — quote-structure
/// errors surface here, everything per-field (UTF-8, arity, numbers) in
/// pass 2; the count fixes the deterministic span layout. Pass 2
/// re-reads the file and pushes each row through a [`ShardBuilder`], which
/// interns global codes in first-appearance order and spills every segment
/// the moment it seals. Peak memory is therefore one unsealed segment plus
/// the growing dictionaries and measure columns — never O(rows).
///
/// Because global codes are assigned in the same first-appearance order the
/// materializing reader uses, the result is **bit-identical** (segment
/// bytes, spill files, every downstream drill-down transcript) to
/// `ShardedTable::from_table(&read_csv_with_measures(text, measures)?, config)`
/// on the same input, for every shard count and resident budget.
pub fn stream_csv_file(
    path: impl AsRef<std::path::Path>,
    measures: &[&str],
    config: &ShardConfig,
) -> Result<ShardedTable, TableError> {
    let path = path.as_ref();
    let open = || -> Result<RecordReader<BufReader<File>>, TableError> {
        Ok(RecordReader::new(BufReader::new(File::open(path)?)))
    };

    // Pass 1: route the header (so a bad measure name fails before any
    // full pass over the file), then count the remaining records without
    // materializing a single field.
    let mut reader = open()?;
    let header = reader.next().ok_or(TableError::Empty)??;
    let (cat_idx, measure_idx) = route_columns(&header, measures)?;
    let total = reader.count_remaining()?;

    // Pass 2: stream rows into the builder.
    let mut reader = open()?;
    let second_header = reader.next().ok_or(TableError::Empty)??;
    if second_header != header {
        return Err(TableError::Csv {
            line: 1,
            message: "file changed between ingest passes".to_owned(),
        });
    }
    let schema = Schema::new(cat_idx.iter().map(|&i| header[i].clone()))?;
    let measure_names: Vec<String> = measure_idx.iter().map(|(_, n)| n.clone()).collect();
    let mut builder = ShardBuilder::new(schema, measure_names, total, config)?;
    let mut measure_buf: Vec<f64> = Vec::with_capacity(measure_idx.len());
    while let Some(record) = reader.next() {
        let record = record?;
        check_arity(&record, header.len(), reader.record_line())?;
        let row_buf: Vec<&str> = cat_idx.iter().map(|&i| record[i].as_str()).collect();
        parse_measures(&record, &measure_idx, &mut measure_buf)?;
        builder.push_row(&row_buf, &measure_buf)?;
    }
    builder.finish()
}

/// Serializes a table (categorical columns then measures) to CSV text.
pub fn write_csv(table: &Table) -> String {
    let mut out = String::new();
    let n_cat = table.n_columns();
    let measure_names: Vec<&str> = table.measure_names().collect();

    for c in 0..n_cat {
        if c > 0 {
            out.push(',');
        }
        write_field(&mut out, table.schema().column_name(c));
    }
    for name in &measure_names {
        if n_cat > 0 || !out.is_empty() {
            out.push(',');
        }
        write_field(&mut out, name);
    }
    out.push('\n');

    let measures: Vec<&[f64]> = measure_names
        .iter()
        .map(|n| table.measure(n).expect("name came from the table"))
        .collect();

    for row in 0..table.n_rows() as u32 {
        let mut first = true;
        for c in 0..n_cat {
            if !first {
                out.push(',');
            }
            first = false;
            write_field(&mut out, table.value(row, c));
        }
        for m in &measures {
            if !first {
                out.push(',');
            }
            first = false;
            let v = m[row as usize];
            out.push_str(&format_number(v));
        }
        out.push('\n');
    }
    out
}

fn format_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_field(out: &mut String, field: &str) {
    let needs_quote =
        field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r');
    if needs_quote {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// A pull-based CSV record reader over any byte stream, honoring quoting.
///
/// Yields one record (a `Vec` of fields) at a time without buffering the
/// rest of the input — the primitive behind both [`read_csv`] (collect
/// everything) and [`stream_csv_file`] (two single-record-at-a-time
/// passes). Quoting metacharacters are all ASCII, so the state machine
/// runs on bytes; multi-byte UTF-8 sequences pass through fields
/// untouched (and are validated once per field).
pub struct RecordReader<R: BufRead> {
    input: R,
    line: usize,
    record_line: usize,
    done: bool,
}

impl<R: BufRead> RecordReader<R> {
    /// Wraps a buffered byte stream.
    pub fn new(input: R) -> Self {
        Self {
            input,
            line: 1,
            record_line: 1,
            done: false,
        }
    }

    /// The 1-based input line the reader is currently on.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The 1-based input line the most recently yielded record **started**
    /// on — exact even across blank lines and quoted embedded newlines, so
    /// ingest errors point at the offending record, not a nearby one.
    pub fn record_line(&self) -> usize {
        self.record_line
    }

    fn peek_byte(&mut self) -> io::Result<Option<u8>> {
        Ok(self.input.fill_buf()?.first().copied())
    }

    fn next_byte(&mut self) -> io::Result<Option<u8>> {
        let b = self.peek_byte()?;
        if b.is_some() {
            self.input.consume(1);
        }
        Ok(b)
    }

    /// Counts the remaining records without materializing a single field —
    /// the streaming ingest's pass 1. Runs the same record-boundary state
    /// machine as iteration (so the count always matches what a subsequent
    /// full read yields) and surfaces the same quote-structure errors;
    /// per-field validation (UTF-8, arity, numbers) is pass 2's job, and a
    /// file changing between passes is caught by the builder's declared
    /// row-count contract.
    pub fn count_remaining(&mut self) -> Result<usize, TableError> {
        let mut count = 0usize;
        let mut in_quotes = false;
        let mut any_content = false;
        let mut field_len = 0usize; // only to detect mid-field stray quotes
        loop {
            let b = self.next_byte()?;
            let Some(b) = b else {
                self.done = true;
                if in_quotes {
                    return Err(TableError::Csv {
                        line: self.line,
                        message: "unterminated quoted field".to_owned(),
                    });
                }
                if any_content {
                    count += 1;
                }
                return Ok(count);
            };
            if in_quotes {
                match b {
                    b'"' => {
                        if self.peek_byte()? == Some(b'"') {
                            self.input.consume(1);
                            field_len += 1;
                        } else {
                            in_quotes = false;
                        }
                    }
                    b'\n' => {
                        self.line += 1;
                        field_len += 1;
                    }
                    _ => field_len += 1,
                }
                continue;
            }
            match b {
                b'"' => {
                    if field_len > 0 {
                        return Err(TableError::Csv {
                            line: self.line,
                            message: "quote in the middle of an unquoted field".to_owned(),
                        });
                    }
                    in_quotes = true;
                    any_content = true;
                }
                b',' => {
                    any_content = true;
                    field_len = 0;
                }
                b'\r' | b'\n' => {
                    if b == b'\r' && self.peek_byte()? == Some(b'\n') {
                        self.input.consume(1);
                    }
                    self.line += 1;
                    if any_content {
                        count += 1;
                        any_content = false;
                    }
                    field_len = 0;
                }
                _ => {
                    field_len += 1;
                    any_content = true;
                }
            }
        }
    }
}

fn finish_field(field: &mut Vec<u8>, line: usize) -> Result<String, TableError> {
    String::from_utf8(std::mem::take(field)).map_err(|_| TableError::Csv {
        line,
        message: "invalid UTF-8 in field".to_owned(),
    })
}

impl<R: BufRead> Iterator for RecordReader<R> {
    type Item = Result<Vec<String>, TableError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut record: Vec<String> = Vec::new();
        let mut field: Vec<u8> = Vec::new();
        let mut in_quotes = false;
        // True once the current record has any content (field bytes or a
        // comma) — a blank line yields no record.
        let mut any_content = false;
        loop {
            let b = match self.next_byte() {
                Ok(b) => b,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            };
            let Some(b) = b else {
                self.done = true;
                if in_quotes {
                    return Some(Err(TableError::Csv {
                        line: self.line,
                        message: "unterminated quoted field".to_owned(),
                    }));
                }
                if any_content || !record.is_empty() {
                    match finish_field(&mut field, self.line) {
                        Ok(s) => record.push(s),
                        Err(e) => return Some(Err(e)),
                    }
                    return Some(Ok(record));
                }
                return None;
            };
            if in_quotes {
                match b {
                    b'"' => match self.peek_byte() {
                        Ok(Some(b'"')) => {
                            self.input.consume(1);
                            field.push(b'"');
                        }
                        Ok(_) => in_quotes = false,
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e.into()));
                        }
                    },
                    b'\n' => {
                        self.line += 1;
                        field.push(b);
                    }
                    _ => field.push(b),
                }
                continue;
            }
            match b {
                b'"' => {
                    if !field.is_empty() {
                        self.done = true;
                        return Some(Err(TableError::Csv {
                            line: self.line,
                            message: "quote in the middle of an unquoted field".to_owned(),
                        }));
                    }
                    in_quotes = true;
                    if !any_content {
                        self.record_line = self.line;
                    }
                    any_content = true;
                }
                b',' => {
                    match finish_field(&mut field, self.line) {
                        Ok(s) => record.push(s),
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e));
                        }
                    }
                    if !any_content {
                        self.record_line = self.line;
                    }
                    any_content = true;
                }
                b'\r' | b'\n' => {
                    if b == b'\r' {
                        match self.peek_byte() {
                            Ok(Some(b'\n')) => self.input.consume(1),
                            Ok(_) => {}
                            Err(e) => {
                                self.done = true;
                                return Some(Err(e.into()));
                            }
                        }
                    }
                    self.line += 1;
                    if any_content || !record.is_empty() {
                        match finish_field(&mut field, self.line - 1) {
                            Ok(s) => record.push(s),
                            Err(e) => {
                                self.done = true;
                                return Some(Err(e));
                            }
                        }
                        return Some(Ok(record));
                    }
                    // Blank line: keep scanning for the next record.
                }
                _ => {
                    field.push(b);
                    if !any_content {
                        self.record_line = self.line;
                    }
                    any_content = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let csv = "Store,Product\nWalmart,cookies\nTarget,bicycles\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value(0, 0), "Walmart");
        assert_eq!(write_csv(&t), csv);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\nplain,field\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.value(0, 0), "x,y");
        assert_eq!(t.value(0, 1), "he said \"hi\"");
        // Roundtrip re-quotes correctly.
        let back = write_csv(&t);
        let t2 = read_csv(&back).unwrap();
        assert_eq!(t2.value(0, 1), "he said \"hi\"");
    }

    #[test]
    fn embedded_newline_in_quoted_field() {
        let csv = "a\n\"line1\nline2\"\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.value(0, 0), "line1\nline2");
    }

    #[test]
    fn crlf_line_endings() {
        let csv = "a,b\r\n1,2\r\n3,4\r\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value(1, 1), "4");
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = read_csv("a\nx").unwrap();
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let err = read_csv("a,b\n1,2\n3\n").unwrap_err();
        match err {
            TableError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(read_csv("").unwrap_err(), TableError::Empty);
    }

    #[test]
    fn measures_are_parsed_as_numbers() {
        let csv = "Store,Sales\nWalmart,100\nTarget,250.5\n";
        let t = read_csv_with_measures(csv, &["Sales"]).unwrap();
        assert_eq!(t.n_columns(), 1);
        assert_eq!(t.measure("Sales").unwrap(), &[100.0, 250.5]);
    }

    #[test]
    fn bad_measure_value_is_parse_error() {
        let csv = "Store,Sales\nWalmart,lots\n";
        assert!(matches!(
            read_csv_with_measures(csv, &["Sales"]),
            Err(TableError::ParseNumber(_))
        ));
    }

    #[test]
    fn unknown_measure_name_is_error() {
        let csv = "Store\nWalmart\n";
        assert!(matches!(
            read_csv_with_measures(csv, &["Sales"]),
            Err(TableError::UnknownMeasure(_))
        ));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(matches!(
            read_csv("a\n\"oops\n"),
            Err(TableError::Csv { .. })
        ));
    }

    #[test]
    fn stray_quote_is_error() {
        assert!(matches!(
            read_csv("a\nfoo\"bar\n"),
            Err(TableError::Csv { .. })
        ));
    }

    #[test]
    fn measure_roundtrip_in_write_csv() {
        let csv = "Store,Sales\nWalmart,100\n";
        let t = read_csv_with_measures(csv, &["Sales"]).unwrap();
        let out = write_csv(&t);
        assert_eq!(out, "Store,Sales\nWalmart,100\n");
    }

    #[test]
    fn empty_fields_are_preserved() {
        let t = read_csv("a,b\n,x\n").unwrap();
        assert_eq!(t.value(0, 0), "");
        assert_eq!(t.value(0, 1), "x");
    }

    #[test]
    fn arity_error_line_is_exact_across_embedded_newlines_and_blanks() {
        // Row 1 spans input lines 2-3 (quoted newline); a blank line
        // follows; the short record starts on line 5 and must be reported
        // there, not at record-index + 2 (= 4).
        let err = read_csv("a,b\n\"l1\nl2\",x\n\n5\n").unwrap_err();
        match err {
            TableError::Csv { line, message } => {
                assert_eq!(line, 5, "{message}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn count_remaining_matches_full_iteration() {
        let cases = [
            "plain\nrows\n",
            "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\nplain,field\n",
            "a\n\"line1\nline2\"\n",
            "a,b\r\n1,2\r\n3,4\r\n",
            "a\nx",       // no trailing newline
            "a\n\nx\n\n", // blank lines yield no records
            "",
        ];
        for case in cases {
            let full = RecordReader::new(case.as_bytes())
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
                .len();
            let counted = RecordReader::new(case.as_bytes())
                .count_remaining()
                .unwrap();
            assert_eq!(counted, full, "case {case:?}");
        }
        // Structural errors surface from the counting pass too.
        assert!(matches!(
            RecordReader::new("a\n\"oops\n".as_bytes()).count_remaining(),
            Err(TableError::Csv { .. })
        ));
        assert!(matches!(
            RecordReader::new("a\nfoo\"bar\n".as_bytes()).count_remaining(),
            Err(TableError::Csv { .. })
        ));
    }
}
