use crate::Table;
use std::sync::Arc;

/// Index of a row within a [`Table`]. `u32` keeps candidate structures small
/// (perf-book guidance: smaller integers for indices).
pub type RowId = u32;

/// One element yielded when scanning a [`TableView`]: a row and its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedRow {
    /// Row index into the underlying [`Table`].
    pub row: RowId,
    /// Per-tuple weight.
    ///
    /// * `1.0` for plain `Count` semantics,
    /// * the measure value for `Sum` semantics (paper §6.3),
    /// * the sample scale factor `N_s` when scanning combined samples
    ///   (paper §4.3), so count estimates stay unbiased even when samples
    ///   with different rates are merged.
    pub weight: f64,
}

#[derive(Debug, Clone)]
enum Rows {
    /// All rows `0..n` of the table.
    All(u32),
    /// An explicit subset (not necessarily sorted, duplicates allowed —
    /// combined samples may legitimately repeat a row).
    Subset(Vec<RowId>),
}

/// A borrowed, possibly weighted, subset of a [`Table`]'s rows.
///
/// This is the unit of work the optimizer operates on: the full table, a
/// drill-down filter `T_r`, or an in-memory sample all present the same
/// interface, so Algorithm 1/2 of the paper have exactly one code path.
#[derive(Debug, Clone)]
pub struct TableView<'a> {
    table: &'a Table,
    rows: Rows,
    /// Parallel to the row sequence; `None` means unit weights.
    weights: Option<Vec<f64>>,
}

impl<'a> TableView<'a> {
    /// A view over every row of `table`, unit weights.
    pub fn all(table: &'a Table) -> Self {
        Self {
            table,
            rows: Rows::All(table.n_rows() as u32),
            weights: None,
        }
    }

    /// A view over an explicit row subset, unit weights.
    pub fn with_rows(table: &'a Table, rows: Vec<RowId>) -> Self {
        debug_assert!(rows.iter().all(|&r| (r as usize) < table.n_rows()));
        Self {
            table,
            rows: Rows::Subset(rows),
            weights: None,
        }
    }

    /// A view over an explicit row subset with per-tuple weights.
    ///
    /// Panics if lengths differ.
    pub fn with_rows_and_weights(table: &'a Table, rows: Vec<RowId>, weights: Vec<f64>) -> Self {
        assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
        debug_assert!(rows.iter().all(|&r| (r as usize) < table.n_rows()));
        Self {
            table,
            rows: Rows::Subset(rows),
            weights: Some(weights),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Number of (row, weight) entries in the view.
    pub fn len(&self) -> usize {
        match &self.rows {
            Rows::All(n) => *n as usize,
            Rows::Subset(v) => v.len(),
        }
    }

    /// True if the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The row id at position `i` of the view.
    #[inline]
    pub fn row_at(&self, i: usize) -> RowId {
        match &self.rows {
            Rows::All(_) => i as RowId,
            Rows::Subset(v) => v[i],
        }
    }

    /// The weight at position `i` of the view.
    #[inline]
    pub fn weight_at(&self, i: usize) -> f64 {
        match &self.weights {
            Some(w) => w[i],
            None => 1.0,
        }
    }

    /// Sum of all weights — the view's total (estimated) count or sum.
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().sum(),
            None => self.len() as f64,
        }
    }

    /// Iterates `(row, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = WeightedRow> + '_ {
        (0..self.len()).map(move |i| WeightedRow {
            row: self.row_at(i),
            weight: self.weight_at(i),
        })
    }

    /// The explicit row-id slice, or `None` when the view covers all rows
    /// in order (position `i` *is* row `i`).
    #[inline]
    pub fn row_ids(&self) -> Option<&[RowId]> {
        match &self.rows {
            Rows::All(_) => None,
            Rows::Subset(v) => Some(v),
        }
    }

    /// The per-tuple weight slice, or `None` for unit weights.
    #[inline]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// The whole view as one [`ViewChunk`].
    #[inline]
    pub fn as_chunk(&self) -> ViewChunk<'_> {
        self.chunk(0, self.len())
    }

    /// The sub-range `[start, start + len)` of view positions as a
    /// [`ViewChunk`]. Panics if out of bounds.
    pub fn chunk(&self, start: usize, len: usize) -> ViewChunk<'_> {
        assert!(start + len <= self.len(), "chunk out of bounds");
        ViewChunk {
            offset: start,
            rows: match &self.rows {
                Rows::All(_) => ChunkRows::Contiguous {
                    start: start as RowId,
                },
                Rows::Subset(v) => ChunkRows::Gather(&v[start..start + len]),
            },
            len,
            weights: self.weights.as_ref().map(|w| &w[start..start + len]),
        }
    }

    /// Splits the view into at most `max_chunks` chunks of near-equal size
    /// (at least one chunk, even when empty). Chunk boundaries come from
    /// [`chunk_spans`] and depend only on `len` and `max_chunks`, so
    /// per-chunk processing merged in chunk order is deterministic
    /// regardless of the executing thread count — the foundation of the
    /// row-sliced kernel mode in `sdd-core`.
    pub fn chunks(&self, max_chunks: usize) -> Vec<ViewChunk<'_>> {
        chunk_spans(self.len(), max_chunks)
            .into_iter()
            .map(|r| self.chunk(r.start, r.len()))
            .collect()
    }

    /// Returns a new view keeping only positions whose row satisfies `pred`.
    pub fn filter(&self, mut pred: impl FnMut(RowId) -> bool) -> TableView<'a> {
        let mut rows = Vec::new();
        let mut weights = self.weights.as_ref().map(|_| Vec::new());
        for i in 0..self.len() {
            let r = self.row_at(i);
            if pred(r) {
                rows.push(r);
                if let Some(w) = &mut weights {
                    w.push(self.weight_at(i));
                }
            }
        }
        TableView {
            table: self.table,
            rows: Rows::Subset(rows),
            weights,
        }
    }

    /// Returns a copy of this view with every weight multiplied by `factor`
    /// (used to rescale a sample into full-table estimates).
    pub fn scaled(&self, factor: f64) -> TableView<'a> {
        let weights: Vec<f64> = (0..self.len())
            .map(|i| self.weight_at(i) * factor)
            .collect();
        let rows: Vec<RowId> = (0..self.len()).map(|i| self.row_at(i)).collect();
        TableView {
            table: self.table,
            rows: Rows::Subset(rows),
            weights: Some(weights),
        }
    }

    /// Concatenates two views over the same table, preserving weights.
    ///
    /// Panics if the views reference different tables.
    pub fn concat(&self, other: &TableView<'a>) -> TableView<'a> {
        assert!(
            std::ptr::eq(self.table, other.table),
            "cannot concat views over different tables"
        );
        let mut rows: Vec<RowId> = Vec::with_capacity(self.len() + other.len());
        let mut weights: Vec<f64> = Vec::with_capacity(self.len() + other.len());
        for v in [self, other] {
            for i in 0..v.len() {
                rows.push(v.row_at(i));
                weights.push(v.weight_at(i));
            }
        }
        TableView {
            table: self.table,
            rows: Rows::Subset(rows),
            weights: Some(weights),
        }
    }
}

/// An **owned**, `Send + Sync` counterpart of [`TableView`]: the table is
/// held by [`Arc`] rather than borrowed, so the view can live inside
/// long-lived session state (a server registry entry, a background prefetch
/// job) and cross thread boundaries freely.
///
/// Owned views are the *state* representation; all computation still runs on
/// borrowed [`TableView`]s — call [`OwnedTableView::as_view`] at the point of
/// use. The two hold identical row/weight data, so converting carries no
/// semantic drift (`as_view` copies the subset row/weight vectors — cheap
/// next to any scan that follows, and free of allocation for all-rows views).
#[derive(Debug, Clone)]
pub struct OwnedTableView {
    table: Arc<Table>,
    rows: Rows,
    /// Parallel to the row sequence; `None` means unit weights.
    weights: Option<Vec<f64>>,
}

impl OwnedTableView {
    /// A view over every row of `table`, unit weights.
    pub fn all(table: Arc<Table>) -> Self {
        let n = table.n_rows() as u32;
        Self {
            table,
            rows: Rows::All(n),
            weights: None,
        }
    }

    /// A view over an explicit row subset, unit weights.
    pub fn with_rows(table: Arc<Table>, rows: Vec<RowId>) -> Self {
        debug_assert!(rows.iter().all(|&r| (r as usize) < table.n_rows()));
        Self {
            table,
            rows: Rows::Subset(rows),
            weights: None,
        }
    }

    /// A view over an explicit row subset with per-tuple weights.
    ///
    /// Panics if lengths differ.
    pub fn with_rows_and_weights(table: Arc<Table>, rows: Vec<RowId>, weights: Vec<f64>) -> Self {
        assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
        debug_assert!(rows.iter().all(|&r| (r as usize) < table.n_rows()));
        Self {
            table,
            rows: Rows::Subset(rows),
            weights: Some(weights),
        }
    }

    /// Copies a borrowed view's row/weight data into an owned view over
    /// `table`.
    ///
    /// Panics if `view` does not reference the same table.
    pub fn from_view(table: Arc<Table>, view: &TableView<'_>) -> Self {
        assert!(
            std::ptr::eq(&*table, view.table),
            "cannot adopt a view over a different table"
        );
        Self {
            table,
            rows: view.rows.clone(),
            weights: view.weights.clone(),
        }
    }

    /// The borrowed [`TableView`] over this owned view's data — the bridge
    /// into every compute path (BRS, kernels, coverage scans).
    #[inline]
    pub fn as_view(&self) -> TableView<'_> {
        TableView {
            table: &self.table,
            rows: self.rows.clone(),
            weights: self.weights.clone(),
        }
    }

    /// The shared table handle.
    #[inline]
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// Number of (row, weight) entries in the view.
    pub fn len(&self) -> usize {
        match &self.rows {
            Rows::All(n) => *n as usize,
            Rows::Subset(v) => v.len(),
        }
    }

    /// True if the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The row id at position `i` of the view.
    #[inline]
    pub fn row_at(&self, i: usize) -> RowId {
        match &self.rows {
            Rows::All(_) => i as RowId,
            Rows::Subset(v) => v[i],
        }
    }

    /// The weight at position `i` of the view.
    #[inline]
    pub fn weight_at(&self, i: usize) -> f64 {
        match &self.weights {
            Some(w) => w[i],
            None => 1.0,
        }
    }

    /// Sum of all weights — the view's total (estimated) count or sum.
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().sum(),
            None => self.len() as f64,
        }
    }

    /// Iterates `(row, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = WeightedRow> + '_ {
        (0..self.len()).map(move |i| WeightedRow {
            row: self.row_at(i),
            weight: self.weight_at(i),
        })
    }

    /// The explicit row-id slice, or `None` when the view covers all rows
    /// in order (position `i` *is* row `i`).
    #[inline]
    pub fn row_ids(&self) -> Option<&[RowId]> {
        match &self.rows {
            Rows::All(_) => None,
            Rows::Subset(v) => Some(v),
        }
    }

    /// The per-tuple weight slice, or `None` for unit weights.
    #[inline]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

/// Splits `[0, n)` into at most `max_chunks` near-equal spans (at least one
/// span, even when `n == 0`; never an empty span when `n > 0`).
///
/// This is the **chunk plan** shared by [`TableView::chunks`] and the
/// row-sliced scans in `sdd-core`: boundaries are a pure function of `n`
/// and `max_chunks` — never of thread count — so any per-span computation
/// merged back in span order is reproducible on every machine.
pub fn chunk_spans(n: usize, max_chunks: usize) -> Vec<std::ops::Range<usize>> {
    let k = max_chunks.clamp(1, n.max(1));
    let base = n / k;
    let extra = n % k; // first `extra` spans get one more element
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[derive(Debug, Clone, Copy)]
enum ChunkRows<'v> {
    /// View positions map to consecutive row ids starting at `start` —
    /// column scans over this chunk read contiguous code-slice runs.
    Contiguous { start: RowId },
    /// Explicit row ids (a gather per column access).
    Gather(&'v [RowId]),
}

/// A borrowed sub-range of a [`TableView`]'s positions — the unit the
/// columnar counting kernel processes (one chunk per worker thread).
///
/// A chunk knows whether its rows are contiguous (`Table::column` slices can
/// be scanned directly) or an explicit gather list, and carries the aligned
/// weight slice when the view is weighted.
#[derive(Debug, Clone, Copy)]
pub struct ViewChunk<'v> {
    offset: usize,
    rows: ChunkRows<'v>,
    len: usize,
    weights: Option<&'v [f64]>,
}

impl<'v> ViewChunk<'v> {
    /// Number of positions in the chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the chunk holds no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Offset of this chunk's first position within the parent view —
    /// aligns the chunk with view-positional arrays such as the optimizer's
    /// covered-weight vector.
    #[inline]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The row id at chunk-local position `i`.
    #[inline]
    pub fn row_at(&self, i: usize) -> RowId {
        debug_assert!(i < self.len);
        match self.rows {
            ChunkRows::Contiguous { start } => start + i as RowId,
            ChunkRows::Gather(ids) => ids[i],
        }
    }

    /// The weight at chunk-local position `i`.
    #[inline]
    pub fn weight_at(&self, i: usize) -> f64 {
        match self.weights {
            Some(w) => w[i],
            None => 1.0,
        }
    }

    /// The aligned weight slice, or `None` for unit weights.
    #[inline]
    pub fn weights(&self) -> Option<&'v [f64]> {
        self.weights
    }

    /// The explicit row-id gather list, or `None` when contiguous.
    #[inline]
    pub fn row_ids(&self) -> Option<&'v [RowId]> {
        match self.rows {
            ChunkRows::Contiguous { .. } => None,
            ChunkRows::Gather(ids) => Some(ids),
        }
    }

    /// For contiguous chunks, the row range covered — callers slice
    /// [`Table::column`] with it for run-length column scans.
    #[inline]
    pub fn contiguous_rows(&self) -> Option<std::ops::Range<usize>> {
        match self.rows {
            ChunkRows::Contiguous { start } => Some(start as usize..start as usize + self.len),
            ChunkRows::Gather(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn t() -> Table {
        Table::from_rows(
            Schema::new(["Store", "Product"]).unwrap(),
            &[
                &["Walmart", "cookies"],
                &["Target", "bicycles"],
                &["Walmart", "comforters"],
                &["Costco", "cookies"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_view_covers_every_row_with_unit_weight() {
        let table = t();
        let v = table.view();
        assert_eq!(v.len(), 4);
        assert!((v.total_weight() - 4.0).abs() < 1e-12);
        let rows: Vec<_> = v.iter().map(|wr| wr.row).collect();
        assert_eq!(rows, vec![0, 1, 2, 3]);
        assert!(v.iter().all(|wr| wr.weight == 1.0));
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let table = t();
        let walmart = table.dictionary(0).code_of("Walmart").unwrap();
        let v = table.view().filter(|r| table.code(r, 0) == walmart);
        assert_eq!(v.len(), 2);
        assert_eq!(v.row_at(0), 0);
        assert_eq!(v.row_at(1), 2);
    }

    #[test]
    fn weighted_view_sums_weights() {
        let table = t();
        let v = TableView::with_rows_and_weights(&table, vec![0, 3], vec![2.5, 0.5]);
        assert_eq!(v.len(), 2);
        assert!((v.total_weight() - 3.0).abs() < 1e-12);
        assert_eq!(v.weight_at(0), 2.5);
    }

    #[test]
    fn filter_preserves_weights() {
        let table = t();
        let v = TableView::with_rows_and_weights(&table, vec![0, 1, 2], vec![1.0, 2.0, 3.0]);
        let cookies = table.dictionary(1).code_of("cookies").unwrap();
        let f = v.filter(|r| table.code(r, 1) == cookies);
        assert_eq!(f.len(), 1);
        assert_eq!(f.weight_at(0), 1.0);
    }

    #[test]
    fn scaled_multiplies_weights() {
        let table = t();
        let v = table.view().scaled(10.0);
        assert!((v.total_weight() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn concat_preserves_order_and_weights() {
        let table = t();
        let a = TableView::with_rows_and_weights(&table, vec![0], vec![2.0]);
        let b = TableView::with_rows(&table, vec![1, 2]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.row_at(0), 0);
        assert_eq!(c.weight_at(0), 2.0);
        assert_eq!(c.weight_at(2), 1.0);
    }

    #[test]
    fn duplicate_rows_are_allowed_in_subsets() {
        let table = t();
        let v = TableView::with_rows(&table, vec![0, 0, 0]);
        assert_eq!(v.len(), 3);
        assert!((v.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_weights_panic() {
        let table = t();
        let _ = TableView::with_rows_and_weights(&table, vec![0, 1], vec![1.0]);
    }

    #[test]
    fn all_view_chunks_are_contiguous() {
        let table = t();
        let v = table.view();
        assert!(v.row_ids().is_none());
        assert!(v.weights().is_none());
        let chunks = v.chunks(3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), v.len());
        let mut pos = 0;
        for c in &chunks {
            assert_eq!(c.offset(), pos);
            let range = c.contiguous_rows().expect("all-view chunks contiguous");
            assert_eq!(range.len(), c.len());
            for i in 0..c.len() {
                assert_eq!(c.row_at(i), v.row_at(pos + i));
                assert_eq!(c.weight_at(i), 1.0);
            }
            pos += c.len();
        }
    }

    #[test]
    fn subset_view_chunks_gather_rows_and_weights() {
        let table = t();
        let v = TableView::with_rows_and_weights(&table, vec![3, 1, 0], vec![0.5, 1.5, 2.5]);
        assert_eq!(v.row_ids(), Some(&[3, 1, 0][..]));
        assert_eq!(v.weights(), Some(&[0.5, 1.5, 2.5][..]));
        let chunks = v.chunks(2);
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].contiguous_rows().is_none());
        let mut pos = 0;
        for c in &chunks {
            for i in 0..c.len() {
                assert_eq!(c.row_at(i), v.row_at(pos + i));
                assert_eq!(c.weight_at(i), v.weight_at(pos + i));
            }
            pos += c.len();
        }
        assert_eq!(pos, 3);
    }

    #[test]
    fn chunk_count_is_clamped() {
        let table = t();
        let v = table.view();
        assert_eq!(v.chunks(100).len(), v.len()); // no empty chunks
        assert_eq!(v.chunks(1).len(), 1);
        let empty = v.filter(|_| false);
        assert_eq!(empty.chunks(4).len(), 1);
        assert!(empty.chunks(4)[0].is_empty());
    }

    #[test]
    fn chunk_spans_partition_the_range() {
        for n in [0usize, 1, 4, 7, 100] {
            for k in 1..=9 {
                let spans = chunk_spans(n, k);
                assert!(!spans.is_empty());
                assert!(spans.len() <= k.max(1));
                let mut pos = 0;
                for s in &spans {
                    assert_eq!(s.start, pos, "n={n} k={k}");
                    assert!(n == 0 || !s.is_empty(), "empty span for n={n} k={k}");
                    pos = s.end;
                }
                assert_eq!(pos, n);
            }
        }
    }

    #[test]
    fn owned_view_matches_borrowed_view() {
        let table = Arc::new(t());
        let owned = OwnedTableView::all(table.clone());
        assert_eq!(owned.len(), 4);
        assert!((owned.total_weight() - 4.0).abs() < 1e-12);
        let v = owned.as_view();
        assert_eq!(v.len(), owned.len());
        for i in 0..owned.len() {
            assert_eq!(v.row_at(i), owned.row_at(i));
            assert_eq!(v.weight_at(i), owned.weight_at(i));
        }

        let subset =
            OwnedTableView::with_rows_and_weights(table.clone(), vec![3, 1], vec![0.5, 2.5]);
        assert_eq!(subset.row_ids(), Some(&[3, 1][..]));
        assert_eq!(subset.weights(), Some(&[0.5, 2.5][..]));
        let sv = subset.as_view();
        assert_eq!(sv.row_ids(), Some(&[3, 1][..]));
        assert!((sv.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn owned_view_adopts_filtered_view() {
        let table = Arc::new(t());
        let cookies = table.dictionary(1).code_of("cookies").unwrap();
        let filtered = {
            let v = table.view().filter(|r| table.code(r, 1) == cookies);
            OwnedTableView::from_view(table.clone(), &v)
        };
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.row_ids(), Some(&[0, 3][..]));
        // The owned view is independent of the borrow it was built from and
        // is Send + Sync (compile-time check).
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&filtered);
    }

    #[test]
    #[should_panic(expected = "different table")]
    fn owned_view_rejects_foreign_table() {
        let a = Arc::new(t());
        let b = t();
        let _ = OwnedTableView::from_view(a, &b.view());
    }

    #[test]
    fn as_chunk_covers_whole_view() {
        let table = t();
        let v = table.view();
        let c = v.as_chunk();
        assert_eq!(c.len(), v.len());
        assert_eq!(c.offset(), 0);
        assert_eq!(c.contiguous_rows(), Some(0..4));
    }
}
