use crate::Table;

/// Index of a row within a [`Table`]. `u32` keeps candidate structures small
/// (perf-book guidance: smaller integers for indices).
pub type RowId = u32;

/// One element yielded when scanning a [`TableView`]: a row and its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedRow {
    /// Row index into the underlying [`Table`].
    pub row: RowId,
    /// Per-tuple weight.
    ///
    /// * `1.0` for plain `Count` semantics,
    /// * the measure value for `Sum` semantics (paper §6.3),
    /// * the sample scale factor `N_s` when scanning combined samples
    ///   (paper §4.3), so count estimates stay unbiased even when samples
    ///   with different rates are merged.
    pub weight: f64,
}

#[derive(Debug, Clone)]
enum Rows {
    /// All rows `0..n` of the table.
    All(u32),
    /// An explicit subset (not necessarily sorted, duplicates allowed —
    /// combined samples may legitimately repeat a row).
    Subset(Vec<RowId>),
}

/// A borrowed, possibly weighted, subset of a [`Table`]'s rows.
///
/// This is the unit of work the optimizer operates on: the full table, a
/// drill-down filter `T_r`, or an in-memory sample all present the same
/// interface, so Algorithm 1/2 of the paper have exactly one code path.
#[derive(Debug, Clone)]
pub struct TableView<'a> {
    table: &'a Table,
    rows: Rows,
    /// Parallel to the row sequence; `None` means unit weights.
    weights: Option<Vec<f64>>,
}

impl<'a> TableView<'a> {
    /// A view over every row of `table`, unit weights.
    pub fn all(table: &'a Table) -> Self {
        Self {
            table,
            rows: Rows::All(table.n_rows() as u32),
            weights: None,
        }
    }

    /// A view over an explicit row subset, unit weights.
    pub fn with_rows(table: &'a Table, rows: Vec<RowId>) -> Self {
        debug_assert!(rows.iter().all(|&r| (r as usize) < table.n_rows()));
        Self {
            table,
            rows: Rows::Subset(rows),
            weights: None,
        }
    }

    /// A view over an explicit row subset with per-tuple weights.
    ///
    /// Panics if lengths differ.
    pub fn with_rows_and_weights(table: &'a Table, rows: Vec<RowId>, weights: Vec<f64>) -> Self {
        assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
        debug_assert!(rows.iter().all(|&r| (r as usize) < table.n_rows()));
        Self {
            table,
            rows: Rows::Subset(rows),
            weights: Some(weights),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Number of (row, weight) entries in the view.
    pub fn len(&self) -> usize {
        match &self.rows {
            Rows::All(n) => *n as usize,
            Rows::Subset(v) => v.len(),
        }
    }

    /// True if the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The row id at position `i` of the view.
    #[inline]
    pub fn row_at(&self, i: usize) -> RowId {
        match &self.rows {
            Rows::All(_) => i as RowId,
            Rows::Subset(v) => v[i],
        }
    }

    /// The weight at position `i` of the view.
    #[inline]
    pub fn weight_at(&self, i: usize) -> f64 {
        match &self.weights {
            Some(w) => w[i],
            None => 1.0,
        }
    }

    /// Sum of all weights — the view's total (estimated) count or sum.
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().sum(),
            None => self.len() as f64,
        }
    }

    /// Iterates `(row, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = WeightedRow> + '_ {
        (0..self.len()).map(move |i| WeightedRow {
            row: self.row_at(i),
            weight: self.weight_at(i),
        })
    }

    /// Returns a new view keeping only positions whose row satisfies `pred`.
    pub fn filter(&self, mut pred: impl FnMut(RowId) -> bool) -> TableView<'a> {
        let mut rows = Vec::new();
        let mut weights = self.weights.as_ref().map(|_| Vec::new());
        for i in 0..self.len() {
            let r = self.row_at(i);
            if pred(r) {
                rows.push(r);
                if let Some(w) = &mut weights {
                    w.push(self.weight_at(i));
                }
            }
        }
        TableView {
            table: self.table,
            rows: Rows::Subset(rows),
            weights,
        }
    }

    /// Returns a copy of this view with every weight multiplied by `factor`
    /// (used to rescale a sample into full-table estimates).
    pub fn scaled(&self, factor: f64) -> TableView<'a> {
        let weights: Vec<f64> = (0..self.len()).map(|i| self.weight_at(i) * factor).collect();
        let rows: Vec<RowId> = (0..self.len()).map(|i| self.row_at(i)).collect();
        TableView {
            table: self.table,
            rows: Rows::Subset(rows),
            weights: Some(weights),
        }
    }

    /// Concatenates two views over the same table, preserving weights.
    ///
    /// Panics if the views reference different tables.
    pub fn concat(&self, other: &TableView<'a>) -> TableView<'a> {
        assert!(
            std::ptr::eq(self.table, other.table),
            "cannot concat views over different tables"
        );
        let mut rows: Vec<RowId> = Vec::with_capacity(self.len() + other.len());
        let mut weights: Vec<f64> = Vec::with_capacity(self.len() + other.len());
        for v in [self, other] {
            for i in 0..v.len() {
                rows.push(v.row_at(i));
                weights.push(v.weight_at(i));
            }
        }
        TableView {
            table: self.table,
            rows: Rows::Subset(rows),
            weights: Some(weights),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn t() -> Table {
        Table::from_rows(
            Schema::new(["Store", "Product"]).unwrap(),
            &[
                &["Walmart", "cookies"],
                &["Target", "bicycles"],
                &["Walmart", "comforters"],
                &["Costco", "cookies"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_view_covers_every_row_with_unit_weight() {
        let table = t();
        let v = table.view();
        assert_eq!(v.len(), 4);
        assert!((v.total_weight() - 4.0).abs() < 1e-12);
        let rows: Vec<_> = v.iter().map(|wr| wr.row).collect();
        assert_eq!(rows, vec![0, 1, 2, 3]);
        assert!(v.iter().all(|wr| wr.weight == 1.0));
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let table = t();
        let walmart = table.dictionary(0).code_of("Walmart").unwrap();
        let v = table.view().filter(|r| table.code(r, 0) == walmart);
        assert_eq!(v.len(), 2);
        assert_eq!(v.row_at(0), 0);
        assert_eq!(v.row_at(1), 2);
    }

    #[test]
    fn weighted_view_sums_weights() {
        let table = t();
        let v = TableView::with_rows_and_weights(&table, vec![0, 3], vec![2.5, 0.5]);
        assert_eq!(v.len(), 2);
        assert!((v.total_weight() - 3.0).abs() < 1e-12);
        assert_eq!(v.weight_at(0), 2.5);
    }

    #[test]
    fn filter_preserves_weights() {
        let table = t();
        let v = TableView::with_rows_and_weights(&table, vec![0, 1, 2], vec![1.0, 2.0, 3.0]);
        let cookies = table.dictionary(1).code_of("cookies").unwrap();
        let f = v.filter(|r| table.code(r, 1) == cookies);
        assert_eq!(f.len(), 1);
        assert_eq!(f.weight_at(0), 1.0);
    }

    #[test]
    fn scaled_multiplies_weights() {
        let table = t();
        let v = table.view().scaled(10.0);
        assert!((v.total_weight() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn concat_preserves_order_and_weights() {
        let table = t();
        let a = TableView::with_rows_and_weights(&table, vec![0], vec![2.0]);
        let b = TableView::with_rows(&table, vec![1, 2]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.row_at(0), 0);
        assert_eq!(c.weight_at(0), 2.0);
        assert_eq!(c.weight_at(2), 1.0);
    }

    #[test]
    fn duplicate_rows_are_allowed_in_subsets() {
        let table = t();
        let v = TableView::with_rows(&table, vec![0, 0, 0]);
        assert_eq!(v.len(), 3);
        assert!((v.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_weights_panic() {
        let table = t();
        let _ = TableView::with_rows_and_weights(&table, vec![0, 1], vec![1.0]);
    }
}
