//! Per-column frequency statistics.
//!
//! These back two pieces of the paper:
//!
//! * the Bits weighting function needs `|c|` (distinct values per column),
//! * §4.2's `minSS` guidance and §6.1's weight-family analysis need `f_c`,
//!   the frequency of each column's most common value.

use crate::{Table, TableView};

/// Frequency statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values observed (`|c|`).
    pub distinct: usize,
    /// Occurrence count per dictionary code (indexed by code).
    pub counts: Vec<u64>,
    /// Fraction of rows carrying the most common value (`f_c`).
    /// `0.0` for an empty column.
    pub top_fraction: f64,
    /// Dictionary code of the most common value (`None` if empty).
    pub top_code: Option<u32>,
}

/// Computes [`ColumnStats`] for column `col` over the whole table.
pub fn column_stats(table: &Table, col: usize) -> ColumnStats {
    let mut counts = vec![0u64; table.cardinality(col)];
    for &code in table.column(col) {
        counts[code as usize] += 1;
    }
    finish(counts, table.n_rows() as u64)
}

/// Computes [`ColumnStats`] for column `col` over a (possibly weighted) view.
/// Weights are rounded into counts only for `top_fraction`; `counts` holds
/// occurrence counts of view entries.
pub fn column_stats_view(view: &TableView<'_>, col: usize) -> ColumnStats {
    let table = view.table();
    let mut counts = vec![0u64; table.cardinality(col)];
    for wr in view.iter() {
        counts[table.code(wr.row, col) as usize] += 1;
    }
    finish(counts, view.len() as u64)
}

fn finish(counts: Vec<u64>, total: u64) -> ColumnStats {
    let distinct = counts.iter().filter(|&&c| c > 0).count();
    let (top_code, top_count) = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, &c)| (Some(i as u32), c))
        .unwrap_or((None, 0));
    let top_fraction = if total == 0 {
        0.0
    } else {
        top_count as f64 / total as f64
    };
    ColumnStats {
        distinct,
        counts,
        top_fraction,
        top_code: if top_count == 0 { None } else { top_code },
    }
}

/// Stats for every column of the table.
pub fn all_column_stats(table: &Table) -> Vec<ColumnStats> {
    (0..table.n_columns())
        .map(|c| column_stats(table, c))
        .collect()
}

/// The column with the fewest distinct values and its cardinality —
/// the `|c|` used in §4.2's `minSS` lower-bound argument.
/// Returns `None` for a zero-column table.
pub fn min_cardinality_column(table: &Table) -> Option<(usize, usize)> {
    (0..table.n_columns())
        .map(|c| (c, table.cardinality(c)))
        .min_by_key(|&(_, card)| card)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn t() -> Table {
        Table::from_rows(
            Schema::new(["Store", "Product"]).unwrap(),
            &[
                &["Walmart", "cookies"],
                &["Walmart", "bicycles"],
                &["Walmart", "cookies"],
                &["Target", "cookies"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_stats_counts_frequencies() {
        let table = t();
        let s = column_stats(&table, 0);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.counts.iter().sum::<u64>(), 4);
        assert!((s.top_fraction - 0.75).abs() < 1e-12);
        let top = s.top_code.unwrap();
        assert_eq!(table.dictionary(0).value_of(top), Some("Walmart"));
    }

    #[test]
    fn stats_over_view_respects_subset() {
        let table = t();
        let v = TableView::with_rows(&table, vec![3]);
        let s = column_stats_view(&v, 0);
        assert_eq!(s.distinct, 1);
        assert!((s.top_fraction - 1.0).abs() < 1e-12);
        assert_eq!(
            table.dictionary(0).value_of(s.top_code.unwrap()),
            Some("Target")
        );
    }

    #[test]
    fn empty_table_stats() {
        let table = Table::from_rows(Schema::new(["a"]).unwrap(), &[] as &[&[&str]]).unwrap();
        let s = column_stats(&table, 0);
        assert_eq!(s.distinct, 0);
        assert_eq!(s.top_fraction, 0.0);
        assert_eq!(s.top_code, None);
    }

    #[test]
    fn min_cardinality_column_picks_smallest() {
        let table = t();
        // Store has 2 distinct, Product has 2 distinct: tie broken by index.
        assert_eq!(min_cardinality_column(&table), Some((0, 2)));
    }

    #[test]
    fn all_column_stats_covers_every_column() {
        let table = t();
        let all = all_column_stats(&table);
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].distinct, 2);
    }
}
