//! Smart drill-down on a large table through the sampling layer (paper §4):
//! the SampleHandler answers drill-downs from in-memory samples, only
//! scanning the full table when Find and Combine both fail, and pre-fetches
//! samples for the likely next clicks.
//!
//! ```sh
//! cargo run --release --example census_at_scale [n_rows]
//! ```

use smart_drilldown::core::Rule;
use smart_drilldown::prelude::*;
use smart_drilldown::sampling::PrefetchEntry;
use std::time::Instant;

fn main() {
    let n_rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300_000);

    let t0 = Instant::now();
    let full = census::census(n_rows, 1990);
    // The paper restricts all experiments to the first 7 columns (§5) — on
    // all 68 correlated columns the frequent-rule lattice is astronomically
    // larger and a summary over 68 wildcards is unreadable anyway.
    let table = std::sync::Arc::new(full.project_first_columns(7));
    println!(
        "Generated census-shaped table: {} rows × {} columns (projected to {}) in {:.1?}\n",
        full.n_rows(),
        full.n_columns(),
        table.n_columns(),
        t0.elapsed()
    );

    let mut handler = SampleHandler::new(
        table.clone(),
        SampleHandlerConfig {
            capacity: 50_000,       // the paper's M
            min_sample_size: 5_000, // the paper's minSS
            seed: 7,
            strategy: AllocationStrategy::Dp,
        },
    );

    // First drill-down: no samples exist → Create (one full scan).
    let trivial = Rule::trivial(table.n_columns());
    let t1 = Instant::now();
    let sample = handler.get_sample(&trivial);
    let brs = Brs::new(&SizeWeight).with_max_weight(4.0);
    let result = brs.run(&sample.view.as_view(), 4);
    println!(
        "First expansion ({:?}, sample of {} tuples) took {:.1?}:",
        sample.mechanism,
        sample.view.len(),
        t1.elapsed()
    );
    for s in &result.rules {
        println!(
            "  {:<60} Count≈{:.0}",
            truncate(&s.rule.display(&table), 58),
            s.count
        );
    }

    // Pre-fetch for the rules the analyst may click next (uniform
    // probabilities; selectivities from the displayed count estimates).
    let total = table.n_rows() as f64;
    let entries: Vec<PrefetchEntry> = result
        .rules
        .iter()
        .map(|s| PrefetchEntry {
            rule: s.rule.clone(),
            probability: 1.0 / result.rules.len() as f64,
            selectivity: (s.count / total).min(1.0),
        })
        .collect();
    let t2 = Instant::now();
    let hit = handler.prefetch(&trivial, &entries);
    println!(
        "\nPre-fetched {} candidate drill-downs in {:.1?} (expected hit prob {:.2})",
        entries.len(),
        t2.elapsed(),
        hit
    );

    // Second drill-down: served from memory, no disk pass.
    let target = result.rules[0].rule.clone();
    let scans_before = handler.stats.full_scans;
    let t3 = Instant::now();
    let sample2 = handler.get_sample(&target);
    // The sample is already filtered to the target's coverage; constrain the
    // optimizer to strict super-rules of the clicked rule (drill-down
    // semantics, §3.1).
    let result2 = smart_drilldown::core::drill_down_with(&brs, &sample2.view.as_view(), &target, 4);
    println!(
        "\nSecond expansion of {} ({:?}, {} tuples, {} new scans) took {:.1?}:",
        truncate(&target.display(&table), 40),
        sample2.mechanism,
        sample2.view.len(),
        handler.stats.full_scans - scans_before,
        t3.elapsed()
    );
    for s in &result2.rules {
        println!(
            "  {:<60} Count≈{:.0}",
            truncate(&s.rule.display(&table), 58),
            s.count
        );
    }

    println!("\nHandler stats: {:?}", handler.stats);
    println!(
        "Memory used: {} / {} tuples",
        handler.memory_used(),
        handler.config().capacity
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n])
    }
}
