//! Implementing your own weighting function (paper §2.2: "our algorithms
//! allow the user to leverage any weighting function W" subject to
//! non-negativity and monotonicity).
//!
//! This example defines a weight that prefers *pairs from different column
//! groups* — a pattern the shipped weights can't express — and verifies its
//! monotonicity before running the optimizer with an `mw` estimated by
//! sampling (§6.1).
//!
//! ```sh
//! cargo run --example custom_weights
//! ```

use smart_drilldown::core::{check_monotone_on, estimate_mw, Rule, WeightFn};
use smart_drilldown::prelude::*;

/// Weights a rule by how many *distinct column groups* it instantiates,
/// squared: rules that combine demographic columns with household columns
/// score higher than rules concentrated in one group.
struct GroupSpanWeight {
    /// Group id per column.
    groups: Vec<usize>,
}

impl WeightFn for GroupSpanWeight {
    fn weight(&self, rule: &Rule, _table: &Table) -> f64 {
        let mut seen = [false; 8];
        let mut spanned = 0usize;
        for c in rule.instantiated_columns() {
            let g = self.groups[c] % 8;
            if !seen[g] {
                seen[g] = true;
                spanned += 1;
            }
        }
        (spanned * spanned) as f64
    }

    fn name(&self) -> &str {
        "GroupSpan²"
    }
}

fn main() {
    let table = marketing::marketing_sized(4000, 7);

    // Column groups: 0 = person (income/sex/marital/age/education/occupation/
    // years), 1 = household, 2 = culture.
    let groups: Vec<usize> = (0..table.n_columns())
        .map(|c| match c {
            0..=6 => 0,
            7..=11 => 1,
            _ => 2,
        })
        .collect();
    let weight = GroupSpanWeight { groups };

    // Sanity: monotone on a deep rule's sub-lattice (required by the paper).
    let probe = Rule::from_pairs(
        &table,
        &[
            ("Sex", "Female"),
            ("TypeOfHome", "House"),
            ("Language", "English"),
        ],
    )
    .expect("values exist");
    assert!(
        check_monotone_on(&weight, &probe, &table),
        "custom weight must be monotone"
    );
    println!("GroupSpan² weight is monotone on the probe lattice ✓");

    // Estimate mw by sampling instead of guessing (paper §6.1).
    let mw = estimate_mw(&table.view(), &weight, 4, 400, 99);
    println!("estimated mw = {mw}");

    let result = Brs::new(&weight).with_max_weight(mw).run(&table.view(), 4);
    println!("\nTop rules under GroupSpan² weighting:");
    for s in &result.rules {
        println!(
            "  {}\n      Count={} Weight={}",
            s.rule.display(&table),
            s.count,
            s.weight
        );
    }

    // Contrast with plain Size weighting.
    let plain = Brs::new(&SizeWeight)
        .with_max_weight(4.0)
        .run(&table.view(), 4);
    println!("\nSame table under Size weighting:");
    for s in &plain.rules {
        println!(
            "  {}\n      Count={} Weight={}",
            s.rule.display(&table),
            s.count,
            s.weight
        );
    }
}
