//! The full prototype architecture (paper §4.3): a scripted tour of the
//! [`Explorer`] — sampled expansions with confidence intervals, automatic
//! pre-fetching, exact-count refresh, and incremental (time-budgeted)
//! rule search.
//!
//! ```sh
//! cargo run --release --example interactive_explorer
//! ```
//!
//! For a live session, run the REPL instead: `cargo run -p sdd-cli --release`.

use smart_drilldown::core::Brs;
use smart_drilldown::prelude::*;
use std::time::Duration;

fn main() {
    let table = std::sync::Arc::new(census::census(200_000, 1990).project_first_columns(7));
    println!(
        "census-shaped table: {} rows × {} columns\n",
        table.n_rows(),
        table.n_columns()
    );

    let mut explorer = Explorer::new(
        table.clone(),
        Box::new(SizeWeight),
        ExplorerConfig {
            k: 4,
            max_weight: Some(4.0),
            ..ExplorerConfig::default()
        },
    );

    // First expansion: Create (one scan), estimates with 95% CIs.
    explorer.expand(&[]).expect("root expansion");
    println!("after first expansion (sampled estimates with CIs):");
    println!("{}", explorer.render());

    // Drill into the first rule: served from the prefetched samples.
    explorer.expand(&[0]).expect("child expansion");
    println!("after drilling into the first rule:");
    println!("{}", explorer.render());
    println!(
        "{} of {} expansions served from memory; handler: {:?}\n",
        explorer.stats.served_from_memory,
        explorer.stats.expansions,
        explorer.handler_stats()
    );

    // The paper's background pass: replace estimates with exact counts.
    explorer.try_refresh_exact_counts().expect("refresh");
    println!("after exact-count refresh:");
    println!("{}", explorer.render());

    // Incremental BRS (§6.1): stream rules under a time budget. The clock
    // stays caller-side — core search is deterministic, so the budget is a
    // plain `run_streaming` stop callback.
    println!("incremental search (250 ms budget, up to 12 rules):");
    let budget = Duration::from_millis(250);
    let start = std::time::Instant::now();
    let result =
        Brs::new(&SizeWeight)
            .with_max_weight(4.0)
            .run_streaming(&table.view(), 12, |_, _| start.elapsed() < budget);
    for s in &result.rules {
        println!("  {:<55} Count={:.0}", s.rule.display(&table), s.count);
    }
    println!("  ({} rules found within the budget)", result.rules.len());
}
