//! The paper's qualitative study (§5.1, Figures 1–4, 6, 7) on the synthetic
//! Marketing survey: different weighting functions and interface actions.
//!
//! ```sh
//! cargo run --release --example marketing_survey
//! ```

use smart_drilldown::core::{drill_down, ColumnWeight, TraditionalEmulation, WeightFn};
use smart_drilldown::olap::drilldown::drill_down_all_values;
use smart_drilldown::prelude::*;

fn main() {
    let table = marketing::marketing(2016);
    // The paper restricts displays to the first 7 columns to fit the page.
    let narrow = std::sync::Arc::new(table.project_first_columns(7));
    println!(
        "Synthetic Marketing dataset: {} rows, using first {} columns\n",
        narrow.n_rows(),
        narrow.n_columns()
    );

    // Figure 1: expand the empty rule, Size weighting, k = 4.
    let mut session = Session::new(narrow.clone(), Box::new(SizeWeight), 4);
    session.set_max_weight(5.0); // the paper's mw for Size weighting
    session.expand(&[]).expect("root expansion");
    println!("== Figure 1: summary after clicking the empty rule (Size) ==");
    println!("{}", session.render());

    // Figure 2: star expansion on the Education column of a displayed rule.
    let education = narrow.schema().index_of("Education").expect("column");
    if let Some(idx) = session
        .root()
        .children()
        .iter()
        .position(|n| n.rule.is_star(education))
    {
        session
            .expand_star(&[idx], education)
            .expect("star expansion");
        println!("== Figure 2: star expansion on 'Education' ==");
        println!("{}", session.render());
        session.collapse(&[idx]).ok();
    }

    // Figure 3: plain expansion of a displayed rule.
    session.expand(&[0]).expect("rule expansion");
    println!("== Figure 3: expanding the first displayed rule ==");
    println!("{}", session.render());

    // Figure 4: a regular drill-down on Age — two ways.
    let age = narrow.schema().index_of("Age").expect("column");
    println!("== Figure 4a: regular drill-down on Age (OLAP baseline) ==");
    let level = drill_down_all_values(&narrow.view(), age);
    for g in &level.groups {
        println!("  {:<8} {}", g.label, g.count);
    }
    println!();

    println!("== Figure 4b: the same via smart drill-down emulation ==");
    let weight = TraditionalEmulation::new(age);
    let k = narrow.cardinality(age);
    let result = drill_down(
        &narrow.view(),
        &weight,
        &smart_drilldown::core::Rule::trivial(narrow.n_columns()),
        k,
    );
    for s in &result.rules {
        println!("  {:<40} Count={}", s.rule.display(&narrow), s.count);
    }
    println!();

    // Figure 6: Bits weighting (mw = 20 in the paper).
    show_weighted(
        &narrow,
        Box::new(BitsWeight),
        20.0,
        "Figure 6: Bits weighting",
    );

    // Figure 7: max(0, Size − 1) weighting.
    show_weighted(
        &narrow,
        Box::new(SizeMinusOne),
        4.0,
        "Figure 7: Size-minus-one weighting",
    );

    // Extension: a custom member of the §6.1 parametric family that loves
    // the Occupation column and ignores Sex.
    let mut w = vec![1.0; narrow.n_columns()];
    w[narrow.schema().index_of("Sex").expect("column")] = 0.0;
    w[narrow.schema().index_of("Occupation").expect("column")] = 3.0;
    show_weighted(
        &narrow,
        Box::new(ColumnWeight::new(w, 1.0)),
        8.0,
        "Custom column-preference weighting (Occupation ×3, Sex ×0)",
    );
}

fn show_weighted(table: &std::sync::Arc<Table>, weight: Box<dyn WeightFn>, mw: f64, title: &str) {
    let mut session = Session::new(table.clone(), weight, 4);
    session.set_max_weight(mw);
    session.expand(&[]).expect("root expansion");
    println!("== {title} ==");
    println!("{}", session.render());
}
