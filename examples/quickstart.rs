//! Quickstart: load a CSV, run one smart drill-down, print the summary.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use smart_drilldown::prelude::*;
use smart_drilldown::table::csv::read_csv;

fn main() {
    // A small sales table. In practice, read from a file.
    let csv = "\
Store,Product,Region
Walmart,cookies,CA-1
Walmart,cookies,CA-1
Walmart,cookies,WA-5
Walmart,soap,CA-1
Walmart,soap,WA-5
Target,bicycles,MA-3
Target,bicycles,MA-3
Target,bicycles,NY-2
Costco,comforters,MA-3
Costco,comforters,MA-3
Costco,comforters,MA-3
Costco,towels,NY-2
";
    let table = std::sync::Arc::new(read_csv(csv).expect("well-formed CSV"));
    println!(
        "Loaded {} rows × {} columns\n",
        table.n_rows(),
        table.n_columns()
    );

    // --- One-shot API: expand the trivial rule into the best 3 rules. ---
    let result = Brs::new(&SizeWeight).run(&table.view(), 3);
    println!("Best 3 rules under Size weighting:");
    for scored in &result.rules {
        println!(
            "  {:<30} Count={:<4} Weight={}",
            scored.rule.display(&table),
            scored.count,
            scored.weight
        );
    }
    println!("  total score = {}\n", result.total_score);

    // --- Interactive API: the paper's click-driven session. ---
    let mut session = Session::new(table.clone(), Box::new(SizeWeight), 3);
    session.expand(&[]).expect("root exists");
    println!("Session after expanding the trivial rule:");
    println!("{}", session.render());

    // Drill into the first displayed rule.
    session.expand(&[0]).expect("first child exists");
    println!("After drilling into the first rule:");
    println!("{}", session.render());

    // Star drill-down: force the Region column open on the first rule.
    let region = table.schema().index_of("Region").expect("column exists");
    if session
        .node(&[0])
        .map(|n| n.rule.is_star(region))
        .unwrap_or(false)
    {
        session.expand_star(&[0], region).expect("star expansion");
        println!("After star-expanding Region on the first rule:");
        println!("{}", session.render());
    }
}
