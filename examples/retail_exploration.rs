//! The paper's walkthrough (§1, Tables 1–3) on the synthetic retail data:
//! a department-store sales table where the analyst discovers that Target
//! sells a lot of bicycles, comforters sell well in MA-3, and Walmart
//! dominates — then drills into Walmart.
//!
//! ```sh
//! cargo run --example retail_exploration
//! ```

use smart_drilldown::prelude::*;

fn main() {
    let table = std::sync::Arc::new(retail(42));
    let mut session = Session::new(table.clone(), Box::new(SizeWeight), 3);

    // Table 1: the initial display — one trivial rule with the total count.
    println!("== Table 1: initial summary ==");
    println!("{}", session.render());

    // Table 2: the analyst clicks the trivial rule.
    session.expand(&[]).expect("root expansion");
    println!("== Table 2: after the first smart drill-down ==");
    println!("{}", session.render());

    // Table 3: the analyst clicks the Walmart rule.
    let walmart_idx = session
        .root()
        .children()
        .iter()
        .position(|n| n.rule.display(&table).contains("Walmart"))
        .expect("the Walmart rule is planted with count 1000");
    session.expand(&[walmart_idx]).expect("walmart expansion");
    println!("== Table 3: after drilling into the Walmart rule ==");
    println!("{}", session.render());

    // Roll up (collapse) — back to Table 2.
    session.collapse(&[walmart_idx]).expect("collapse");
    println!("== After collapsing Walmart (roll-up) ==");
    println!("{}", session.render());

    // Bonus: the same exploration by total Sales instead of tuple count
    // (the paper's Sum aggregate, §6.3).
    let view = table.view_weighted_by("Sales").expect("measure exists");
    let result = Brs::new(&SizeWeight).run(&view, 3);
    println!("== Top rules by total Sales (Sum aggregate) ==");
    for s in &result.rules {
        println!(
            "  {:<32} Sum(Sales)={:<9.0} Weight={}",
            s.rule.display(&table),
            s.count,
            s.weight
        );
    }
}
