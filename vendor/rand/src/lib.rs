//! Vendored stand-in for the subset of `rand` 0.8 this workspace uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::index::sample`]. The build environment has no
//! registry access, so this ships in-tree.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and statistically solid for test-data
//! generation and sampling (it is *not* the ChaCha12 of upstream `StdRng`,
//! so exact streams differ from the real crate; all in-tree consumers only
//! rely on determinism, not on specific streams).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` over its natural full range
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::gen(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::gen(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from raw bits over their full/natural range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly, producing `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over half-open/inclusive ranges. The single
/// blanket `SampleRange` impl below (rather than per-type impls) is what
/// lets integer-literal ranges unify with a usize context, mirroring the
/// real crate's inference behavior.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); one rejection zone retry
    // loop keeps it unbiased.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                lo + <$t as Standard>::gen(rng) * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::gen(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256++ here; see
    /// the crate docs for how this differs from upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{Rng, RngCore};

        /// The indices chosen by [`sample`].
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The chosen indices as a slice (selection order).
            pub fn as_slice(&self) -> &[usize] {
                &self.0
            }

            /// Consumes into a `Vec<usize>`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly
        /// (Floyd's algorithm). Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = rng.gen_range(0..=j);
                if let Some(pos) = chosen.iter().position(|&c| c == t) {
                    // Already present: Floyd inserts j after the collision.
                    chosen.insert(pos + 1, j);
                } else {
                    chosen.push(t);
                }
            }
            IndexVec(chosen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(0..=4u8);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let picks = seq::index::sample(&mut rng, 50, 20);
            let v = picks.clone().into_vec();
            assert_eq!(v.len(), 20);
            assert!(v.iter().all(|&i| i < 50));
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 20, "duplicates in {v:?}");
        }
    }

    #[test]
    fn index_sample_full_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let picks = seq::index::sample(&mut rng, 5, 5).into_vec();
        let mut s = picks;
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn works_through_unsized_rng_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
