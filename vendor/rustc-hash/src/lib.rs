//! Vendored stand-in for the `rustc-hash` crate, providing the same public
//! surface the workspace uses (`FxHashMap`, `FxHashSet`, `FxHasher`). The
//! build environment has no registry access, so this ships in-tree.
//!
//! The hasher follows the classic FxHash scheme: a multiply-rotate mix folded
//! over the input one word at a time. It is not cryptographic; it targets
//! short keys (integers, small tuples) on the optimizer hot path.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// The `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast, non-cryptographic hasher for short keys.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7), i as f64);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&(i, i * 7)], i as f64);
        }
        assert!(!m.contains_key(&(1000, 7000)));
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h: FxHashSet<u64> = (0..256u64).map(|i| b.hash_one(i) >> 56).collect();
        // Top byte of sequential hashes should hit many distinct buckets.
        assert!(h.len() > 64, "only {} distinct top bytes", h.len());
    }
}
