//! Vendored stand-in for the subset of `proptest` this workspace uses. The
//! build environment has no registry access, so this ships in-tree.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`, `#[test]`
//!   attributes, `name in strategy` / `mut name in strategy` parameters),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * numeric range strategies (`0u8..4`, `0.0f64..3.0`, `3..=3`),
//! * `&str` strategies for `proptest`'s regex-literal patterns of the form
//!   `"[class]{lo,hi}"` / `".{lo,hi}"`,
//! * 2-/3-tuples of strategies, [`collection::vec`], `prop_map`, and
//!   [`arbitrary::any`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics with
//! the sampled inputs Debug-printed by the assertion itself. Cases are
//! deterministic per test (seeded from the test's name).

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random test values.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Free-function form used by the [`crate::proptest!`] macro so it works
    /// with both `S` and `&S`.
    pub fn sample_once<S: Strategy>(s: &S, rng: &mut StdRng) -> S::Value {
        s.sample(rng)
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.source.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// `&str` literals are interpreted as the tiny regex subset proptest
    /// tests here actually use: one atom (`.` or a `[...]` class) followed
    /// by an optional `{lo,hi}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut StdRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

/// Minimal pattern-string sampling (see [`strategy::Strategy`] for `&str`).
pub mod string {
    use rand::rngs::StdRng;
    use rand::Rng;

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            '0' => '\0',
            other => other,
        }
    }

    /// Parses a `[...]` class body into a set of candidate chars.
    fn parse_class(body: &str) -> Vec<char> {
        let mut out: Vec<char> = Vec::new();
        let chars: Vec<char> = body.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            // Range `a-z` (a `-` not at either end, next not escaped-end).
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let hi = if chars[i + 2] == '\\' && i + 3 < chars.len() {
                    i += 1;
                    unescape(chars[i + 2])
                } else {
                    chars[i + 2]
                };
                for v in c as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(v) {
                        out.push(ch);
                    }
                }
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        }
        out
    }

    /// Samples a string matching `atom{lo,hi}` where atom is `.` or a class.
    pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let (alphabet, rest): (Vec<char>, &str) = if let Some(stripped) = pattern.strip_prefix('.')
        {
            // `.` — printable ASCII plus a few controls, close enough to
            // proptest's "any char" for fuzzing text codecs.
            let mut a: Vec<char> = (b' '..=b'~').map(|b| b as char).collect();
            a.extend(['\n', '\r', '\t']);
            (a, stripped)
        } else if let Some(start) = pattern.strip_prefix('[') {
            let end = {
                // Find the unescaped closing bracket.
                let bytes = start.as_bytes();
                let mut j = 0;
                loop {
                    assert!(j < bytes.len(), "unterminated class in pattern {pattern:?}");
                    if bytes[j] == b'\\' {
                        j += 2;
                        continue;
                    }
                    if bytes[j] == b']' {
                        break j;
                    }
                    j += 1;
                }
            };
            (parse_class(&start[..end]), &start[end + 1..])
        } else {
            panic!("unsupported pattern {pattern:?}: expected `.` or `[class]`");
        };

        let (lo, hi) = if rest.is_empty() {
            (1usize, 1usize)
        } else {
            let body = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| panic!("unsupported quantifier in pattern {pattern:?}"));
            match body.split_once(',') {
                Some((l, h)) => (
                    l.trim().parse().expect("bad lower bound"),
                    h.trim().parse().expect("bad upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        };
        assert!(
            !alphabet.is_empty(),
            "empty alphabet for pattern {pattern:?}"
        );
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Vector length specification: a fixed size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-strategy values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a natural full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly over the type's domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Runner configuration and deterministic seeding.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-`proptest!` block configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per test function.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic RNG seeded from the test name.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// The glob-import surface used by tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// See the crate docs; matches real proptest's macro grammar for the cases
/// used in-tree.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..__cfg.cases {
                $crate::__proptest_case!(__rng; $body; $($params)*);
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident; $body:block;) => { { $body } };
    ($rng:ident; $body:block; mut $p:ident in $s:expr) => {{
        let mut $p = $crate::strategy::sample_once(&($s), &mut $rng);
        { $body }
    }};
    ($rng:ident; $body:block; $p:ident in $s:expr) => {{
        let $p = $crate::strategy::sample_once(&($s), &mut $rng);
        { $body }
    }};
    ($rng:ident; $body:block; mut $p:ident in $s:expr, $($rest:tt)*) => {{
        let mut $p = $crate::strategy::sample_once(&($s), &mut $rng);
        $crate::__proptest_case!($rng; $body; $($rest)*)
    }};
    ($rng:ident; $body:block; $p:ident in $s:expr, $($rest:tt)*) => {{
        let $p = $crate::strategy::sample_once(&($s), &mut $rng);
        $crate::__proptest_case!($rng; $body; $($rest)*)
    }};
}

/// `prop_assert!` — plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::test_runner::rng_for("range_strategies");
        for _ in 0..1000 {
            let v = crate::strategy::sample_once(&(0u8..4), &mut rng);
            assert!(v < 4);
            let f = crate::strategy::sample_once(&(0.0f64..3.0), &mut rng);
            assert!((0.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_runner::rng_for("vec_sizes");
        for _ in 0..200 {
            let v = crate::strategy::sample_once(
                &crate::collection::vec((0u8..4, 0u8..3), 1..60),
                &mut rng,
            );
            assert!((1..60).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 4 && b < 3));
            let fixed =
                crate::strategy::sample_once(&crate::collection::vec(0u8..2, 3..=3), &mut rng);
            assert_eq!(fixed.len(), 3);
        }
    }

    #[test]
    fn pattern_strategies_match_their_class() {
        let mut rng = crate::test_runner::rng_for("patterns");
        for _ in 0..500 {
            let s = crate::strategy::sample_once(&"[ -~]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let soup = crate::strategy::sample_once(&"[\",\\n\\r a-z]{0,12}", &mut rng);
            assert!(soup.chars().count() <= 12);
            assert!(soup.chars().all(|c| c == '"'
                || c == ','
                || c == '\n'
                || c == '\r'
                || c == ' '
                || c.is_ascii_lowercase()));
            let dot = crate::strategy::sample_once(&".{0,200}", &mut rng);
            assert!(dot.chars().count() <= 200);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::rng_for("prop_map");
        let s = (0u8..4).prop_map(|v| v as u32 * 10);
        for _ in 0..100 {
            let v = crate::strategy::sample_once(&s, &mut rng);
            assert!(v % 10 == 0 && v < 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, mut bindings, trailing comma.
        #[test]
        fn macro_grammar_works(a in 0u8..4, mut v in crate::collection::vec(0usize..10, 0..5), seed in any::<u64>(),) {
            v.push(a as usize);
            prop_assert!(v.last() == Some(&(a as usize)));
            prop_assert_eq!(seed, seed);
        }
    }
}
