//! Vendored stand-in for the subset of `criterion` this workspace uses. The
//! build environment has no registry access, so this ships in-tree.
//!
//! It keeps the harness API (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with throughput and
//! parametrized inputs) and performs a simple but honest measurement:
//! per-iteration calibration, then a fixed number of timed samples whose
//! median, mean, and throughput are printed as one line per benchmark.
//! There are no plots, no statistics beyond median/mean, and no saved
//! baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (override: `CRITERION_MEASURE_MS`).
fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parametrized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Collected per-iteration sample durations (seconds).
    samples: Vec<f64>,
}

impl Bencher {
    /// Calibrates, then times `f`, recording per-iteration durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: how many iterations fit in ~1/10 of the budget?
        let budget = measure_budget();
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let per_sample =
            (budget.as_secs_f64() / 10.0 / probe.as_secs_f64()).clamp(1.0, 1_000_000.0) as u64;

        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64() / per_sample as f64;
            self.samples.push(elapsed);
            if self.samples.len() >= 100 {
                break;
            }
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / median),
            Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / median),
            None => String::new(),
        };
        println!(
            "{name:<50} median {:>12}  mean {:>12}{rate}",
            format_time(median),
            format_time(mean)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one parametrized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{name}", self.name), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_with_input(BenchmarkId::new("named", 1), &1, |b, &x| {
            b.iter(|| black_box(x + 2))
        });
        group.finish();
    }
}
