//! Property-based tests of the core optimizer's invariants (paper
//! Lemmas 1–3 plus the Algorithm-2 ⇔ brute-force equivalence).

use proptest::prelude::*;
use smart_drilldown::core::{
    find_best_marginal_rule, marginal::brute_force_best_marginal, score_list, score_set,
    sort_by_weight_desc, BitsWeight, Brs, ColumnWeight, Rule, SearchOptions, SizeMinusOne,
    SizeWeight, WeightFn,
};
use smart_drilldown::table::{Schema, Table};

/// A random small categorical table: 3 columns with cardinalities ≤ 4.
fn arb_table() -> impl Strategy<Value = Table> {
    proptest::collection::vec((0u8..4, 0u8..4, 0u8..3), 1..60).prop_map(|rows| {
        let str_rows: Vec<[String; 3]> = rows
            .iter()
            .map(|(a, b, c)| [format!("a{a}"), format!("b{b}"), format!("c{c}")])
            .collect();
        Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &str_rows).unwrap()
    })
}

/// A random rule over a 3-column table with the given cardinalities-by-
/// construction (codes are only valid if they appear; use row-derived rules
/// to stay in-domain).
fn rule_from_row(table: &Table, row_idx: usize, mask: u8) -> Rule {
    let row = (row_idx % table.n_rows().max(1)) as u32;
    let cols: Vec<usize> = (0..3).filter(|c| mask & (1 << c) != 0).collect();
    Rule::from_row_columns(table, row, &cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1: sorting a rule list by descending weight never lowers Score.
    #[test]
    fn lemma1_sorted_order_dominates(table in arb_table(), picks in proptest::collection::vec((0usize..1000, 1u8..8), 1..5)) {
        let view = table.view();
        let rules: Vec<Rule> = picks.iter().map(|&(i, m)| rule_from_row(&table, i, m)).collect();
        let any_order = score_list(&view, &SizeWeight, &rules);
        let sorted = sort_by_weight_desc(&view, &SizeWeight, &rules);
        let sorted_score = score_list(&view, &SizeWeight, &sorted);
        prop_assert!(sorted_score.total + 1e-9 >= any_order.total);
    }

    /// Lemma 3 (submodularity): the marginal gain of adding a rule to a set
    /// never increases when the set grows.
    #[test]
    fn lemma3_submodularity(table in arb_table(), picks in proptest::collection::vec((0usize..1000, 1u8..8), 3..6)) {
        let view = table.view();
        let rules: Vec<Rule> = picks.iter().map(|&(i, m)| rule_from_row(&table, i, m)).collect();
        let (extra, rest) = rules.split_last().unwrap();
        // A ⊂ B: A = first half of rest, B = all of rest.
        let a = &rest[..rest.len() / 2];
        let b = rest;
        let score = |set: &[Rule]| score_set(&view, &SizeWeight, set).total;
        let with = |set: &[Rule]| {
            let mut v = set.to_vec();
            v.push(extra.clone());
            v
        };
        let gain_a = score(&with(a)) - score(a);
        let gain_b = score(&with(b)) - score(b);
        prop_assert!(gain_a + 1e-9 >= gain_b, "gain_a={gain_a} < gain_b={gain_b}");
    }

    /// Monotonicity of every shipped weight function along random chains.
    #[test]
    fn weights_are_monotone(table in arb_table(), i in 0usize..1000) {
        let full = rule_from_row(&table, i, 0b111);
        let weights: Vec<Box<dyn WeightFn>> = vec![
            Box::new(SizeWeight),
            Box::new(BitsWeight),
            Box::new(SizeMinusOne),
            Box::new(ColumnWeight::new(vec![0.5, 2.0, 1.0], 1.5)),
        ];
        for w in &weights {
            for sub in full.all_sub_rules() {
                for sub2 in sub.all_sub_rules() {
                    prop_assert!(w.weight(&sub2, &table) <= w.weight(&sub, &table) + 1e-9);
                }
            }
        }
    }

    /// Algorithm 2 finds exactly the brute-force best marginal rule.
    #[test]
    fn marginal_search_matches_brute_force(
        table in arb_table(),
        cov_seed in proptest::collection::vec(0.0f64..3.0, 60),
        mw in 1u8..4,
    ) {
        let view = table.view();
        let cov: Vec<f64> = (0..view.len()).map(|i| cov_seed[i % cov_seed.len()]).collect();
        let mw = mw as f64;
        let fast = find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(mw));
        let slow = brute_force_best_marginal(&view, &SizeWeight, &cov, mw, None);
        match (&fast, &slow) {
            (Some(f), Some(s)) => prop_assert!((f.marginal_value - s.1).abs() < 1e-9,
                "fast {} vs slow {}", f.marginal_value, s.1),
            (None, None) => {}
            _ => prop_assert!(false, "disagreement: {fast:?} vs {slow:?}"),
        }
    }

    /// Pruning never changes the greedy result.
    #[test]
    fn pruning_is_lossless(table in arb_table(), k in 1usize..4) {
        let view = table.view();
        let with = Brs::new(&SizeWeight).with_pruning(true).run(&view, k);
        let without = Brs::new(&SizeWeight).with_pruning(false).run(&view, k);
        prop_assert!((with.total_score - without.total_score).abs() < 1e-9);
    }

    /// Coverage subsumption: a super-rule's covered set is a subset of its
    /// sub-rule's (the paper's `t ∈ r2 ⇒ t ∈ r1`).
    #[test]
    fn coverage_subsumption(table in arb_table(), i in 0usize..1000) {
        let specific = rule_from_row(&table, i, 0b111);
        for general in specific.all_sub_rules() {
            prop_assert!(general.is_sub_rule_of(&specific));
            for row in 0..table.n_rows() as u32 {
                if specific.covers_row(&table, row) {
                    prop_assert!(general.covers_row(&table, row));
                }
            }
        }
    }

    /// MCounts partition the covered mass: Σ MCount = covered tuples, and
    /// MCount ≤ Count per rule.
    #[test]
    fn mcounts_partition_coverage(table in arb_table(), picks in proptest::collection::vec((0usize..1000, 1u8..8), 1..5)) {
        let view = table.view();
        let rules: Vec<Rule> = picks.iter().map(|&(i, m)| rule_from_row(&table, i, m)).collect();
        let s = score_list(&view, &SizeWeight, &rules);
        let mcount_sum: f64 = s.rules.iter().map(|r| r.mcount).sum();
        prop_assert!((mcount_sum + s.uncovered - view.len() as f64).abs() < 1e-9);
        for r in &s.rules {
            prop_assert!(r.mcount <= r.count + 1e-9);
        }
    }

    /// Greedy selection order has non-increasing marginal gains (a
    /// consequence of submodularity the optimizer relies on).
    #[test]
    fn greedy_gains_non_increasing(table in arb_table()) {
        let view = table.view();
        let res = Brs::new(&SizeWeight).run(&view, 4);
        // Recompute gains along the selection order.
        let mut prev_gain = f64::INFINITY;
        for i in 0..res.selection_order.len() {
            let before = score_set(&view, &SizeWeight, &res.selection_order[..i]).total;
            let after = score_set(&view, &SizeWeight, &res.selection_order[..=i]).total;
            let gain = after - before;
            prop_assert!(gain <= prev_gain + 1e-9, "gain grew: {gain} after {prev_gain}");
            prev_gain = gain;
        }
    }
}
