//! Property-based tests of the spill-tier fast path: local-code predicate
//! pushdown at the packed-width boundaries, and SIMD/scalar bit-parity on
//! every tail length the vector kernels can see.
//!
//! The spill coding packs each column's shard-local codes at 1, 2, or
//! 4 bytes depending on the shard-local cardinality — so cardinalities
//! 255/256/257 and 65535/65536/65537 are the exact seams where a column
//! flips from one width to the next. The pushdown scans those packed codes
//! directly; these tests pin that every width (and both sides of every
//! seam) produces byte-identical results to the monolithic global-code
//! scan.

use proptest::prelude::*;
use smart_drilldown::core::{
    accel, covered_rows, find_best_marginal_rule, rule_count, try_covered_rows_sharded,
    try_find_best_marginal_rule_sharded, Rule, SearchOptions, SearchScratch, SizeWeight,
};
use smart_drilldown::table::{Schema, ShardConfig, ShardedTable, ShardedView, Table};
use std::sync::Arc;

/// A two-column table whose first column runs through `card` distinct
/// values (hitting every code 0..card) and whose second column is a small
/// grouping key. Row order interleaves so every shard sees a dense prefix
/// of the value space — shard-local cardinality equals the global one in
/// the first shard and crosses the width seam exactly when `card` does.
fn wide_table(card: usize, rows: usize) -> Table {
    let data: Vec<[String; 2]> = (0..rows)
        .map(|i| [format!("v{}", i % card), format!("g{}", i % 7)])
        .collect();
    Table::from_rows(Schema::new(["V", "G"]).unwrap(), &data).unwrap()
}

fn spilled(table: &Table, shards: usize) -> Arc<ShardedTable> {
    Arc::new(
        ShardedTable::from_table(
            table,
            &ShardConfig::spilling(shards, 1, std::env::temp_dir()),
        )
        .unwrap(),
    )
}

/// Pushdown parity at one local-width boundary cardinality: coverage scans
/// and counts over the packed form must match the monolithic scan exactly.
fn assert_width_boundary_parity(card: usize) {
    // Enough rows that every value appears a few times; 2 shards keep the
    // runtime sane at the 65k seams.
    let rows = card * 3 + 17;
    let table = wide_table(card, rows);
    let st = spilled(&table, 2);

    // Probe codes on both sides of the seam plus a joint-column rule.
    let probes = [0usize, 1, card / 2, card - 2, card - 1];
    for &p in &probes {
        let rule = Rule::from_pairs(&table, &[("V", format!("v{p}").as_str())]).unwrap();
        assert_eq!(
            try_covered_rows_sharded(&st, &rule).unwrap(),
            covered_rows(&table, &rule),
            "card {card}, probe {p}"
        );
    }
    let joint = Rule::from_pairs(&table, &[("V", "v1"), ("G", "g1")]).unwrap();
    assert_eq!(
        try_covered_rows_sharded(&st, &joint).unwrap(),
        covered_rows(&table, &joint),
        "card {card}, joint rule"
    );

    // A full search crosses the seam in pass-1 histograms and pass-j cells.
    let view = table.view();
    let cov = vec![0.0f64; view.len()];
    let mut opts = SearchOptions::new(3.0);
    opts.parallel = false;
    let mono = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts).unwrap();
    let sview = ShardedView::all(st);
    let mut scratch = SearchScratch::new();
    let got = try_find_best_marginal_rule_sharded(&sview, &SizeWeight, &cov, &opts, &mut scratch)
        .unwrap()
        .unwrap();
    assert_eq!(got.rule, mono.rule, "card {card}");
    assert_eq!(
        got.marginal_value.to_bits(),
        mono.marginal_value.to_bits(),
        "card {card}"
    );
    assert_eq!(got.count.to_bits(), mono.count.to_bits(), "card {card}");
}

#[test]
fn pushdown_parity_at_1_to_2_byte_seam() {
    for card in [255usize, 256, 257] {
        assert_width_boundary_parity(card);
    }
}

#[test]
fn pushdown_parity_at_2_to_4_byte_seam() {
    for card in [65_535usize, 65_536, 65_537] {
        assert_width_boundary_parity(card);
    }
}

/// The SIMD kernels' position/count output must equal the scalar
/// reference on EVERY tail length 0..64 — covering all remainder paths of
/// the 32/16/8-lane loops — for all three widths. The reference is
/// computed inline so the assertion is independent of the dispatch state.
#[test]
fn simd_tail_parity_on_all_lengths() {
    let mut x = 0x2545F491_4F6CDD1Du64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for n in 0..64usize {
        let v8: Vec<u8> = (0..n).map(|_| (next() % 5) as u8).collect();
        let v16: Vec<u16> = (0..n).map(|_| (next() % 5) as u16).collect();
        let v32: Vec<u32> = (0..n).map(|_| (next() % 5) as u32).collect();
        for want in 0..5u32 {
            let base = 1000;
            let mut out = Vec::new();
            accel::positions_eq_u8(&v8, want as u8, base, &mut out);
            let expect: Vec<u32> = v8
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c as u32 == want)
                .map(|(i, _)| base + i as u32)
                .collect();
            assert_eq!(out, expect, "u8 n={n} want={want}");
            assert_eq!(accel::count_eq_u8(&v8, want as u8), expect.len());

            let mut out = Vec::new();
            accel::positions_eq_u16(&v16, want as u16, base, &mut out);
            let expect: Vec<u32> = v16
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c as u32 == want)
                .map(|(i, _)| base + i as u32)
                .collect();
            assert_eq!(out, expect, "u16 n={n} want={want}");
            assert_eq!(accel::count_eq_u16(&v16, want as u16), expect.len());

            let mut out = Vec::new();
            accel::positions_eq_u32(&v32, want, base, &mut out);
            let expect: Vec<u32> = v32
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c == want)
                .map(|(i, _)| base + i as u32)
                .collect();
            assert_eq!(out, expect, "u32 n={n} want={want}");
            assert_eq!(accel::count_eq_u32(&v32, want), expect.len());
        }
    }
}

/// Truncating a spill file mid-blob must yield `Corrupt`, not a panic or a
/// wrong answer — the regression for the historical `.expect` crash.
#[test]
fn truncated_spill_file_is_an_error_not_a_panic() {
    let table = wide_table(300, 1000);
    let st = spilled(&table, 3);
    let rule = Rule::from_pairs(&table, &[("V", "v7")]).unwrap();
    let expect = covered_rows(&table, &rule);
    assert_eq!(try_covered_rows_sharded(&st, &rule).unwrap(), expect);

    let path = st.spill_path(1).unwrap().to_path_buf();
    let bytes = std::fs::read(&path).unwrap();
    // A cut inside the header (or the scanned column's blob) must error; a
    // cut past everything the scan range-reads may legitimately succeed —
    // but then the answer must still be exactly right. Never a panic.
    for cut in [0usize, 7, 16, 60, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        st.evict_all();
        if let Ok(got) = try_covered_rows_sharded(&st, &rule) {
            assert_eq!(got, expect, "cut at {cut}: success must be correct");
        }
    }
    // Header damage is always fatal for this shard's scans.
    std::fs::write(&path, &bytes[..16]).unwrap();
    st.evict_all();
    assert!(try_covered_rows_sharded(&st, &rule).is_err());
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(try_covered_rows_sharded(&st, &rule).unwrap(), expect);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random small tables, random shard counts, random rules: pushdown
    /// coverage, counting, and search all match the monolithic kernel
    /// bitwise on spilling storage.
    #[test]
    fn pushdown_matches_monolithic_on_random_tables(
        rows in proptest::collection::vec((0u8..6, 0u8..4, 0u8..3), 1..120),
        shards in 1usize..6,
        probe_a in 0u8..6,
        probe_b in 0u8..4,
    ) {
        let data: Vec<[String; 3]> = rows
            .iter()
            .map(|&(a, b, c)| [format!("a{a}"), format!("b{b}"), format!("c{c}")])
            .collect();
        let table = Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &data).unwrap();
        let st = spilled(&table, shards);

        // The probed value may be absent from the table entirely (and from
        // any individual shard's remap) — both paths must agree anyway.
        let rule = Rule::trivial(3)
            .with_value(0, table.dictionary(0).code_of(&format!("a{probe_a}")).unwrap_or(u32::MAX))
            .with_value(1, table.dictionary(1).code_of(&format!("b{probe_b}")).unwrap_or(u32::MAX));
        prop_assert_eq!(
            try_covered_rows_sharded(&st, &rule).unwrap(),
            covered_rows(&table, &rule)
        );
        prop_assert_eq!(
            rule_count(&table.view(), &rule),
            smart_drilldown::core::try_rule_count_sharded(
                &ShardedView::all(st.clone()), &rule).unwrap()
        );

        let view = table.view();
        let cov = vec![0.0f64; view.len()];
        let mut opts = SearchOptions::new(3.0);
        opts.parallel = false;
        let mono = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts);
        let mut scratch = SearchScratch::new();
        let got = try_find_best_marginal_rule_sharded(
            &ShardedView::all(st), &SizeWeight, &cov, &opts, &mut scratch).unwrap();
        match (mono, got) {
            (Some(m), Some(g)) => {
                prop_assert_eq!(g.rule, m.rule);
                prop_assert_eq!(g.marginal_value.to_bits(), m.marginal_value.to_bits());
            }
            (None, None) => {}
            (m, g) => prop_assert!(false, "mono {m:?} vs sharded {g:?}"),
        }
    }
}
