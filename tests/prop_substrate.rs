//! Property-based tests of the substrates: table/CSV roundtrips,
//! bucketization bounds, reservoir statistics, allocation feasibility, the
//! knapsack solver, and the sharded-table invariants (span partitioning,
//! dictionary-remap spill round-trips, layout-independent chunk plans).

use proptest::prelude::*;
use smart_drilldown::sampling::{
    lemma4_reduction, project_capped_simplex, solve_convex, solve_dp, solve_uniform,
    AllocationProblem, Knapsack, Reservoir,
};
use smart_drilldown::table::bucketize::{equal_depth, equal_width};
use smart_drilldown::table::csv::{read_csv, write_csv};
use smart_drilldown::table::{
    chunk_spans, Schema, ShardBuilder, ShardConfig, ShardedTable, ShardedView, Table,
};
use std::sync::Arc;

fn arb_cells() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(
        proptest::collection::vec("[ -~]{0,8}", 3..=3), // printable ASCII incl. commas/quotes
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV write → read roundtrips arbitrary printable cell content.
    #[test]
    fn csv_roundtrip(cells in arb_cells()) {
        let rows: Vec<Vec<String>> = cells;
        let table = Table::from_rows(Schema::new(["c0", "c1", "c2"]).unwrap(), &rows).unwrap();
        let text = write_csv(&table);
        let back = read_csv(&text).unwrap();
        prop_assert_eq!(back.n_rows(), table.n_rows());
        for r in 0..table.n_rows() as u32 {
            for c in 0..3 {
                prop_assert_eq!(back.value(r, c), table.value(r, c));
            }
        }
    }

    /// Equal-width bucket assignment always lands values inside their bucket.
    #[test]
    fn equal_width_assignments_in_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..100), n in 1usize..10) {
        let b = equal_width(&values, n).unwrap();
        prop_assert_eq!(b.assignment.len(), values.len());
        for (&v, &a) in values.iter().zip(&b.assignment) {
            let bucket = b.buckets[a];
            prop_assert!(v >= bucket.lo - 1e-9, "{v} below {bucket:?}");
            // Last bucket is closed above.
            if a + 1 < b.buckets.len() {
                prop_assert!(v < bucket.hi + 1e-9);
            }
        }
    }

    /// Equal-depth buckets are monotone: larger values never land in
    /// earlier buckets.
    #[test]
    fn equal_depth_is_monotone(values in proptest::collection::vec(-1e3f64..1e3, 2..100), n in 1usize..8) {
        let b = equal_depth(&values, n).unwrap();
        let mut pairs: Vec<(f64, usize)> = values.iter().copied().zip(b.assignment.iter().copied()).collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "bucket order violated: {w:?}");
        }
    }

    /// A reservoir never exceeds capacity and never invents items.
    #[test]
    fn reservoir_holds_valid_subset(n_stream in 0usize..200, cap in 0usize..20, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut res = Reservoir::new(cap);
        for i in 0..n_stream {
            res.offer(i, &mut rng);
        }
        prop_assert!(res.items().len() <= cap.min(n_stream));
        prop_assert!(res.items().iter().all(|&i| i < n_stream));
        prop_assert_eq!(res.seen(), n_stream as u64);
        // All items distinct.
        let mut sorted: Vec<_> = res.items().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), res.items().len());
    }

    /// Simplex projection always lands in the feasible set and is a no-op
    /// on feasible points.
    #[test]
    fn projection_feasible_and_idempotent(mut x in proptest::collection::vec(-100.0f64..100.0, 1..10), cap in 0.1f64..100.0) {
        project_capped_simplex(&mut x, cap);
        prop_assert!(x.iter().all(|&v| v >= -1e-9));
        prop_assert!(x.iter().sum::<f64>() <= cap + 1e-6);
        let before = x.clone();
        project_capped_simplex(&mut x, cap);
        for (a, b) in before.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-6, "projection not idempotent");
        }
    }

    /// All three allocators stay within budget; DP dominates uniform on the
    /// step objective.
    #[test]
    fn allocators_feasible_dp_dominates(
        sels in proptest::collection::vec(0.05f64..1.0, 1..5),
        probs_raw in proptest::collection::vec(0.01f64..1.0, 1..5),
        capacity in 200usize..5000,
    ) {
        let d = sels.len().min(probs_raw.len());
        let total: f64 = probs_raw[..d].iter().sum();
        let mut parent = vec![None];
        let mut prob = vec![0.0];
        let mut selectivity = vec![1.0];
        for i in 0..d {
            parent.push(Some(0));
            prob.push(probs_raw[i] / total);
            selectivity.push(sels[i]);
        }
        let p = AllocationProblem { parent, prob, selectivity, capacity, min_ss: 500 };
        for alloc in [solve_dp(&p), solve_convex(&p), solve_uniform(&p)] {
            prop_assert!(p.used(&alloc.sizes) <= p.capacity);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&alloc.value));
        }
        prop_assert!(solve_dp(&p).value + 1e-9 >= solve_uniform(&p).value);
    }

    /// The exact knapsack solver returns a feasible set achieving its value.
    #[test]
    fn knapsack_solution_is_feasible_and_consistent(
        weights in proptest::collection::vec(1usize..50, 1..10),
        values in proptest::collection::vec(0.0f64..10.0, 1..10),
        capacity in 0usize..150,
    ) {
        let n = weights.len().min(values.len());
        let k = Knapsack {
            weights: weights[..n].to_vec(),
            values: values[..n].to_vec(),
            capacity,
        };
        let (best, chosen) = k.solve_exact();
        let w: usize = chosen.iter().map(|&i| k.weights[i]).sum();
        let v: f64 = chosen.iter().map(|&i| k.values[i]).sum();
        prop_assert!(w <= capacity);
        prop_assert!((v - best).abs() < 1e-9);
        // No better single swap: adding any unchosen item must overflow...
        // (full optimality is checked against the Lemma-4 DP below).
    }

    /// Shard spans always partition the row range `[0, n_rows)` exactly:
    /// in order, gapless, and never empty for non-empty tables.
    #[test]
    fn shard_spans_partition_the_row_range(
        n_rows in 0usize..200,
        shards in 1usize..12,
    ) {
        let rows: Vec<[String; 1]> = (0..n_rows).map(|i| [format!("v{}", i % 7)]).collect();
        let table = Table::from_rows(Schema::new(["A"]).unwrap(), &rows).unwrap();
        let st = ShardedTable::from_table(&table, &ShardConfig::in_memory(shards)).unwrap();
        let mut pos = 0usize;
        for span in st.spans() {
            prop_assert_eq!(span.start, pos);
            prop_assert!(n_rows == 0 || !span.is_empty());
            pos = span.end;
        }
        prop_assert_eq!(pos, n_rows);
        // Every row maps back into its span.
        for r in 0..n_rows as u32 {
            let s = st.shard_of_row(r);
            prop_assert!(st.spans()[s].contains(&(r as usize)));
        }
    }

    /// The spill round-trip (global → local dictionary codes → disk →
    /// local → global) reproduces every segment bit-for-bit, even when a
    /// one-shard budget forces every access through the spill tier, and
    /// regardless of shard-local cardinalities (which choose the 1- or
    /// 2-byte local code widths).
    #[test]
    fn dictionary_remap_spill_roundtrips(
        cells in proptest::collection::vec(
            proptest::collection::vec(0u32..300, 2..=2), 1..120),
        shards in 1usize..9,
    ) {
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|r| r.iter().map(|v| format!("x{v}")).collect())
            .collect();
        let table = Table::from_rows(Schema::new(["A", "B"]).unwrap(), &rows).unwrap();
        let st = ShardedTable::from_table(
            &table,
            &ShardConfig::spilling(shards, 1, std::env::temp_dir()),
        )
        .unwrap();
        for i in 0..st.n_shards() {
            let seg = st.try_segment(i).unwrap();
            for c in 0..table.n_columns() {
                prop_assert_eq!(seg.col(c), &table.column(c)[seg.span()]);
            }
        }
        prop_assert!(st.loads() >= st.n_shards() as u64, "cold cache must load from disk");
    }

    /// `ShardedView::chunks` agrees with `chunk_spans` of the view length —
    /// the chunk plan is independent of the shard layout.
    #[test]
    fn sharded_view_chunks_agree_with_chunk_spans(
        n_rows in 1usize..150,
        shards in 1usize..10,
        max_chunks in 1usize..12,
        subset_stride in 1usize..4,
    ) {
        let rows: Vec<[String; 1]> = (0..n_rows).map(|i| [format!("v{}", i % 5)]).collect();
        let table = Table::from_rows(Schema::new(["A"]).unwrap(), &rows).unwrap();
        let st = Arc::new(ShardedTable::from_table(&table, &ShardConfig::in_memory(shards)).unwrap());

        let all = ShardedView::all(st.clone());
        prop_assert_eq!(all.chunks(max_chunks), chunk_spans(all.len(), max_chunks));

        let subset: Vec<u32> = (0..n_rows as u32).step_by(subset_stride).collect();
        let sub = ShardedView::with_rows(st, subset.clone());
        prop_assert_eq!(sub.chunks(max_chunks), chunk_spans(subset.len(), max_chunks));

        // And the shard runs cover the positions exactly once, in order.
        let mut pos = 0usize;
        for run in sub.shard_runs() {
            prop_assert_eq!(run.positions.start, pos);
            pos = run.positions.end;
        }
        prop_assert_eq!(pos, sub.len());
    }

    /// The streaming builder seals segments exactly on `chunk_spans`
    /// boundaries for arbitrary row counts and shard counts: after the
    /// `i`-th pushed row, the number of sealed segments equals the number
    /// of span ends at or below `i + 1`, a spilling build writes each spill
    /// exactly once with no read-backs, and the finished layout is the one
    /// `from_table` would produce.
    #[test]
    fn stream_builder_seals_on_chunk_span_boundaries(
        n_rows in 0usize..180,
        shards in 1usize..10,
        spill in any::<bool>(),
    ) {
        let cfg = if spill {
            ShardConfig::spilling(shards, 1, std::env::temp_dir())
        } else {
            ShardConfig::in_memory(shards)
        };
        let spans = chunk_spans(n_rows, shards);
        let mut b = ShardBuilder::new(Schema::new(["A", "B"]).unwrap(), vec![], n_rows, &cfg)
            .unwrap();
        for i in 0..n_rows {
            b.push_row(&[format!("v{}", i % 6), format!("w{}", i % 4)], &[]).unwrap();
            let expect_sealed = spans.iter().filter(|s| !s.is_empty() && s.end <= i + 1).count();
            prop_assert_eq!(
                b.segments_sealed(), expect_sealed,
                "after row {}: sealed off a chunk_spans boundary", i
            );
        }
        let st = b.finish().unwrap();
        prop_assert_eq!(st.spans(), spans.as_slice());
        if spill {
            prop_assert_eq!(st.spills(), st.n_shards() as u64, "one spill write per shard");
            prop_assert_eq!(st.loads(), 0, "a streaming build never reads back");
            prop_assert_eq!(st.peak_resident(), 0, "no segment decoded during the build");
        }
        for (i, span) in spans.iter().enumerate() {
            let seg = st.try_segment(i).unwrap();
            prop_assert_eq!(seg.span(), span.clone());
            prop_assert_eq!(seg.table().n_rows(), span.len());
        }
    }

    /// A local-dictionary spill `remap` round-trips through an **Arc-shared**
    /// global dictionary: every decoded segment holds pointer-identical
    /// dictionary handles to the header (never a clone), reproduces the
    /// reference global codes exactly, and decodes codes back to the
    /// original strings.
    #[test]
    fn remap_roundtrips_through_arc_shared_dictionary(
        cells in proptest::collection::vec(
            proptest::collection::vec(0u32..300, 2..=2), 1..100),
        shards in 1usize..9,
    ) {
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|r| r.iter().map(|v| format!("x{v}")).collect())
            .collect();
        let reference = Table::from_rows(Schema::new(["A", "B"]).unwrap(), &rows).unwrap();
        let cfg = ShardConfig::spilling(shards, 1, std::env::temp_dir());
        let mut b = ShardBuilder::new(Schema::new(["A", "B"]).unwrap(), vec![], rows.len(), &cfg)
            .unwrap();
        for row in &rows {
            b.push_row(row, &[]).unwrap();
        }
        let st = b.finish().unwrap();
        for i in 0..st.n_shards() {
            let seg = st.try_segment(i).unwrap();
            for c in 0..reference.n_columns() {
                prop_assert!(
                    Arc::ptr_eq(st.header().dictionary_arc(c), seg.table().dictionary_arc(c)),
                    "shard {} col {}: dictionary cloned instead of Arc-shared", i, c
                );
                prop_assert_eq!(seg.col(c), &reference.column(c)[seg.span()]);
                for (local, &code) in seg.col(c).iter().enumerate() {
                    let global_row = (seg.span().start + local) as u32;
                    prop_assert_eq!(
                        seg.table().dictionary(c).value_of(code),
                        Some(reference.value(global_row, c))
                    );
                }
            }
        }
    }

    /// Lemma 4 end-to-end on random instances: the allocation DP's optimum
    /// equals base probability + knapsack optimum (scaled).
    #[test]
    fn lemma4_optima_correspond(
        weights in proptest::collection::vec(10usize..90, 1..5),
        values in proptest::collection::vec(0.5f64..5.0, 1..5),
        cap_frac in 0.2f64..0.9,
    ) {
        let n = weights.len().min(values.len());
        let total_w: usize = weights[..n].iter().sum();
        let k = Knapsack {
            weights: weights[..n].to_vec(),
            values: values[..n].to_vec(),
            capacity: ((total_w as f64) * cap_frac) as usize,
        };
        let inst = lemma4_reduction(&k, 100);
        let alloc = solve_dp(&inst.problem);
        let (opt, _) = k.solve_exact();
        let expected = inst.base_prob + opt / inst.value_scale;
        prop_assert!((alloc.value - expected).abs() < 1e-9,
            "allocation {} vs knapsack-derived {expected}", alloc.value);
    }
}
