//! End-to-end integration test: the paper's §1 walkthrough through the
//! public facade, spanning datagen → table → core.

use smart_drilldown::core::{score_set, SizeWeight};
use smart_drilldown::prelude::*;

#[test]
fn tables_1_2_3_reproduce_through_the_facade() {
    let table = std::sync::Arc::new(retail(42));

    // Table 1: trivial rule with the total count.
    let mut session = Session::new(table.clone(), Box::new(SizeWeight), 3);
    assert_eq!(session.root().count, 6000.0);
    assert!(session.root().rule.is_trivial());

    // Table 2.
    session.expand(&[]).unwrap();
    let shown: Vec<(String, f64)> = session
        .root()
        .children()
        .iter()
        .map(|n| (n.rule.display(&table), n.count))
        .collect();
    assert!(
        shown.contains(&("(Target, bicycles, ?)".to_owned(), 200.0)),
        "{shown:?}"
    );
    assert!(
        shown.contains(&("(?, comforters, MA-3)".to_owned(), 600.0)),
        "{shown:?}"
    );
    assert!(
        shown.contains(&("(Walmart, ?, ?)".to_owned(), 1000.0)),
        "{shown:?}"
    );

    // Display order is descending weight (Lemma 1's convention).
    let weights: Vec<f64> = session.root().children().iter().map(|n| n.weight).collect();
    assert!(weights.windows(2).all(|w| w[0] >= w[1]));

    // Table 3.
    let walmart = session
        .root()
        .children()
        .iter()
        .position(|n| n.rule.display(&table) == "(Walmart, ?, ?)")
        .unwrap();
    session.expand(&[walmart]).unwrap();
    let sub: Vec<(String, f64)> = session
        .node(&[walmart])
        .unwrap()
        .children()
        .iter()
        .map(|n| (n.rule.display(&table), n.count))
        .collect();
    assert!(
        sub.contains(&("(Walmart, cookies, ?)".to_owned(), 200.0)),
        "{sub:?}"
    );
    assert!(
        sub.contains(&("(Walmart, ?, CA-1)".to_owned(), 150.0)),
        "{sub:?}"
    );
    assert!(
        sub.contains(&("(Walmart, ?, WA-5)".to_owned(), 130.0)),
        "{sub:?}"
    );

    // Collapse = roll-up.
    session.collapse(&[walmart]).unwrap();
    assert!(!session.node(&[walmart]).unwrap().is_expanded());
}

#[test]
fn one_shot_api_agrees_with_session() {
    let table = std::sync::Arc::new(retail(42));
    let result = Brs::new(&SizeWeight).run(&table.view(), 3);

    let mut session = Session::new(table.clone(), Box::new(SizeWeight), 3);
    session.expand(&[]).unwrap();
    let session_rules: Vec<_> = session
        .root()
        .children()
        .iter()
        .map(|n| n.rule.clone())
        .collect();
    assert_eq!(result.rules_only(), session_rules);
}

#[test]
fn displayed_score_matches_recomputation() {
    let table = std::sync::Arc::new(retail(42));
    let view = table.view();
    let result = Brs::new(&SizeWeight).run(&view, 3);
    let recomputed = score_set(&view, &SizeWeight, &result.rules_only());
    assert!((result.total_score - recomputed.total).abs() < 1e-9);
    assert_eq!(result.total_score, 2.0 * 200.0 + 2.0 * 600.0 + 1.0 * 1000.0);
}

#[test]
fn sum_aggregate_walkthrough() {
    let table = std::sync::Arc::new(retail(42));
    let view = table.view_weighted_by("Sales").unwrap();
    let result = Brs::new(&SizeWeight).run(&view, 3);
    // Same rule shapes win under Sum (sales are uniform-ish per tuple).
    let shown: Vec<String> = result
        .rules
        .iter()
        .map(|s| s.rule.display(&table))
        .collect();
    assert!(shown.contains(&"(Walmart, ?, ?)".to_owned()), "{shown:?}");
    // Sums exceed counts (each tuple carries ≥ 40 in sales).
    for s in &result.rules {
        assert!(s.count >= 40.0 * 100.0);
    }
}

#[test]
fn star_drill_down_on_walkthrough() {
    let table = std::sync::Arc::new(retail(42));
    let walmart = smart_drilldown::core::Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
    let region = table.schema().index_of("Region").unwrap();
    let res = star_drill_down(&table.view(), &SizeWeight, &walmart, region, 3);
    // CA-1 (150) and WA-5 (130) are Walmart's biggest planted regions.
    let shown: Vec<String> = res.rules.iter().map(|s| s.rule.display(&table)).collect();
    assert!(shown.iter().any(|s| s.contains("CA-1")), "{shown:?}");
    assert!(shown.iter().any(|s| s.contains("WA-5")), "{shown:?}");
    for s in &res.rules {
        assert!(!s.rule.is_star(region));
    }
}
