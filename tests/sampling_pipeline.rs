//! Integration tests across core + sampling: drill-downs served from
//! samples must approximate full-table results, the Find/Combine/Create
//! ladder must engage in the documented order, and prefetching must
//! eliminate disk passes.

use smart_drilldown::core::{rule_count, Rule, SizeWeight};
use smart_drilldown::explorer::PrefetchMode;
use smart_drilldown::prelude::*;
use smart_drilldown::sampling::{FetchMechanism, PrefetchEntry, StoredSampleInfo};
use smart_drilldown::table::Table;
use std::sync::Arc;

fn handler_cfg(capacity: usize, min_ss: usize, seed: u64) -> SampleHandlerConfig {
    SampleHandlerConfig {
        capacity,
        min_sample_size: min_ss,
        seed,
        strategy: AllocationStrategy::Dp,
    }
}

#[test]
fn sampled_expansion_approximates_exact_expansion() {
    let table = std::sync::Arc::new(retail(42));
    let exact = Brs::new(&SizeWeight)
        .with_max_weight(3.0)
        .run(&table.view(), 3);

    let mut agree = 0usize;
    let trials = 5usize;
    for seed in 0..trials as u64 {
        let mut handler = SampleHandler::new(table.clone(), handler_cfg(20_000, 3_000, seed));
        let sample = handler.get_sample(&Rule::trivial(3));
        let approx = Brs::new(&SizeWeight)
            .with_max_weight(3.0)
            .run(&sample.view.as_view(), 3);
        if approx.rules_only() == exact.rules_only() {
            agree += 1;
        }
        // Count estimates within 25% for every displayed rule.
        for s in &approx.rules {
            let truth = rule_count(&table.view(), &s.rule);
            assert!(
                (s.count - truth).abs() / truth.max(1.0) < 0.25,
                "seed {seed}: estimate {} vs truth {truth} for {}",
                s.count,
                s.rule.display(&table)
            );
        }
    }
    assert!(
        agree >= trials - 1,
        "sampled rule set disagreed with exact in {} of {trials} trials",
        trials - agree
    );
}

#[test]
fn find_combine_create_ladder() {
    let table = std::sync::Arc::new(retail(42));
    let mut handler = SampleHandler::new(table.clone(), handler_cfg(30_000, 800, 3));
    let trivial = Rule::trivial(3);
    let walmart = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();

    // 1st: nothing cached → Create.
    assert_eq!(
        handler.get_sample(&trivial).mechanism,
        FetchMechanism::Create
    );
    // 2nd same rule → Find.
    assert_eq!(handler.get_sample(&trivial).mechanism, FetchMechanism::Find);
    // Sub-rule coverage insufficient? trivial sample is only 800 tuples →
    // Walmart portion ≈ 133 < 800 → Create.
    assert_eq!(
        handler.get_sample(&walmart).mechanism,
        FetchMechanism::Create
    );
    // Now a Walmart super-rule can Combine from the Walmart sample:
    // cookies ≈ 20% of Walmart's 800 = 160... still < 800 → Create (exact).
    let cookies =
        Rule::from_pairs(&table, &[("Store", "Walmart"), ("Product", "cookies")]).unwrap();
    let s = handler.get_sample(&cookies);
    assert_eq!(s.mechanism, FetchMechanism::Create);
    // The cookies rule covers only 200 tuples < minSS 800: the stored
    // sample is exact, so asking again is a Find with scale 1.
    let again = handler.get_sample(&cookies);
    assert_eq!(again.mechanism, FetchMechanism::Find);
    assert!((again.scale - 1.0).abs() < 1e-12);
    assert_eq!(again.view.len(), 200);
}

#[test]
fn combine_merges_multiple_sources_unbiased() {
    let table = std::sync::Arc::new(retail(42));
    // Big capacity, small minSS: seed samples for two sub-rules of the
    // Walmart×cookies target.
    let mut handler = SampleHandler::new(table.clone(), handler_cfg(50_000, 100, 11));
    let walmart = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
    let cookies = Rule::from_pairs(&table, &[("Product", "cookies")]).unwrap();
    // Force creation of both parent samples (minSS 100 → reservoirs of 100).
    let _ = handler.get_sample(&walmart);
    let _ = handler.get_sample(&cookies);

    let both = Rule::from_pairs(&table, &[("Store", "Walmart"), ("Product", "cookies")]).unwrap();
    let s = handler.get_sample(&both);
    // Walmart sample: ~20 cookies rows; cookies sample: 100 rows all
    // Walmart (cookies only sold by Walmart) → combined ≥ 100 ≥ minSS.
    assert_eq!(s.mechanism, FetchMechanism::Combine);
    let est = s.view.total_weight();
    let truth = 200.0;
    assert!(
        (est - truth).abs() / truth < 0.5,
        "combined estimate {est} too far from {truth}"
    );
}

#[test]
fn prefetch_then_drill_without_disk() {
    let table = std::sync::Arc::new(retail(42));
    let mut handler = SampleHandler::new(table.clone(), handler_cfg(30_000, 1_000, 17));
    let trivial = Rule::trivial(3);
    let first = handler.get_sample(&trivial);
    let result = Brs::new(&SizeWeight)
        .with_max_weight(3.0)
        .run(&first.view.as_view(), 3);

    let entries: Vec<PrefetchEntry> = result
        .rules
        .iter()
        .map(|s| PrefetchEntry {
            rule: s.rule.clone(),
            probability: 1.0 / 3.0,
            selectivity: (s.count / 6000.0).min(1.0),
        })
        .collect();
    handler.prefetch(&trivial, &entries);
    let scans = handler.stats.full_scans;

    for e in &entries {
        let s = handler.get_sample(&e.rule);
        assert_ne!(
            s.mechanism,
            FetchMechanism::Create,
            "{} forced a scan after prefetch",
            e.rule.display(&table)
        );
    }
    assert_eq!(
        handler.stats.full_scans, scans,
        "drill-downs after prefetch hit disk"
    );
}

#[test]
fn prefetch_is_reproducible_across_thread_counts() {
    // The prefetch scan runs task-per-rule with per-reservoir RNGs seeded
    // from (config.seed, rule): the stored samples — rows, order, scales,
    // and serving mechanisms — must be identical whether the scan ran on
    // one worker or many.
    let table = std::sync::Arc::new(retail(42));
    let trivial = Rule::trivial(3);
    let walmart = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
    let target = Rule::from_pairs(&table, &[("Store", "Target")]).unwrap();
    let entries = [
        PrefetchEntry {
            rule: walmart.clone(),
            probability: 0.6,
            selectivity: 1000.0 / 6000.0,
        },
        PrefetchEntry {
            rule: target.clone(),
            probability: 0.4,
            selectivity: 200.0 / 6000.0,
        },
    ];
    let run = |threads: &str| {
        std::env::set_var("SDD_THREADS", threads);
        let mut handler = SampleHandler::new(table.clone(), handler_cfg(20_000, 500, 77));
        let hit = handler.prefetch(&trivial, &entries);
        let mut fetched = Vec::new();
        for rule in [&walmart, &target] {
            let s = handler.get_sample(rule);
            fetched.push((
                s.mechanism == FetchMechanism::Create,
                s.scale.to_bits(),
                s.view
                    .row_ids()
                    .expect("sampled view has explicit rows")
                    .to_vec(),
            ));
        }
        std::env::remove_var("SDD_THREADS");
        (hit.to_bits(), fetched)
    };
    assert_eq!(
        run("1"),
        run("6"),
        "prefetch results depend on thread count"
    );
}

#[test]
fn session_over_sampled_view_reproduces_walkthrough_shape() {
    let table = std::sync::Arc::new(retail(42));
    let mut handler = SampleHandler::new(table.clone(), handler_cfg(20_000, 4_000, 23));
    let sample = handler.get_sample(&Rule::trivial(3));
    // Run a session over the scaled sample view: counts are estimates.
    let mut session = Session::with_view(sample.view, Box::new(SizeWeight), 3);
    session.expand(&[]).unwrap();
    let shown: Vec<String> = session
        .root()
        .children()
        .iter()
        .map(|n| n.rule.display(&table))
        .collect();
    assert!(shown.contains(&"(Walmart, ?, ?)".to_owned()), "{shown:?}");
    // Estimated root count ≈ 6000.
    assert!((session.root().count - 6000.0).abs() < 300.0);
}

/// Drives a fixed three-level drill script through an [`Explorer`] and
/// snapshots the sample store afterwards. `mode` controls prefetch
/// scheduling; `threads` pins the scan worker count via `SDD_THREADS`.
fn prefetch_script_samples(
    table: &Arc<Table>,
    mode: PrefetchMode,
    threads: &str,
) -> (Vec<StoredSampleInfo>, String) {
    std::env::set_var("SDD_THREADS", threads);
    let mut ex = Explorer::new(
        table.clone(),
        Box::new(SizeWeight),
        ExplorerConfig {
            k: 3,
            max_weight: Some(3.0),
            handler: handler_cfg(20_000, 1_000, 55),
            prefetch: mode,
            confidence_z: 1.96,
            cache: None,
            table_id: None,
        },
    );
    for path in [vec![], vec![0], vec![1], vec![0]] {
        ex.expand(&path).expect("scripted expansion");
        // In deferred mode, play the background worker: claim and run the
        // job between requests (the server's think-time overlap).
        if let Some(job) = ex.take_pending_prefetch() {
            ex.run_prefetch(&job);
        }
    }
    std::env::remove_var("SDD_THREADS");
    (ex.handler().stored_samples(), ex.render())
}

#[test]
fn background_prefetch_is_deterministic_across_workers() {
    // The §4.3 prefetch must store bit-identical samples whether it runs
    // inline in the expansion call, on a single background worker, or with
    // the scan fanned out over 8 workers — rows, order, scales, and the
    // resulting display must all match.
    let table = Arc::new(retail(42));
    let (inline_samples, inline_render) =
        prefetch_script_samples(&table, PrefetchMode::Inline, "1");
    let (worker1_samples, worker1_render) =
        prefetch_script_samples(&table, PrefetchMode::Deferred, "1");
    let (worker8_samples, worker8_render) =
        prefetch_script_samples(&table, PrefetchMode::Deferred, "8");

    assert!(!inline_samples.is_empty(), "script must store samples");
    assert_eq!(
        inline_samples, worker1_samples,
        "deferred(1 worker) differs from inline"
    );
    assert_eq!(
        inline_samples, worker8_samples,
        "deferred(8 workers) differs from inline"
    );
    assert_eq!(inline_render, worker1_render);
    assert_eq!(inline_render, worker8_render);
    // Scales must match to the bit, not approximately.
    for (a, b) in inline_samples.iter().zip(&worker8_samples) {
        assert_eq!(a.scale.to_bits(), b.scale.to_bits());
    }
}

#[test]
fn background_prefetch_reduces_request_blocking_scans() {
    // Acceptance criterion: prefetching measurably reduces the full scans
    // an analyst *waits on*. Every Create is a blocking full pass over the
    // table on the request path; with prefetch, drill-downs after the first
    // are served from prefetched memory (the prefetch pass itself runs in
    // think-time, off the request path).
    let table = Arc::new(retail(42));
    let drill = |mode: PrefetchMode| {
        let mut ex = Explorer::new(
            table.clone(),
            Box::new(SizeWeight),
            ExplorerConfig {
                k: 3,
                max_weight: Some(3.0),
                handler: handler_cfg(20_000, 1_000, 31),
                prefetch: mode,
                confidence_z: 1.96,
                cache: None,
                table_id: None,
            },
        );
        for path in [vec![], vec![0], vec![1], vec![2]] {
            ex.expand(&path).expect("scripted expansion");
            if let Some(job) = ex.take_pending_prefetch() {
                ex.run_prefetch(&job);
            }
        }
        ex.handler_stats()
    };

    let without = drill(PrefetchMode::Off);
    let with = drill(PrefetchMode::Deferred);
    assert_eq!(
        without.creates, 4,
        "without prefetch every expansion blocks on a Create scan: {without:?}"
    );
    assert_eq!(
        with.creates, 1,
        "with prefetch only the cold first expansion blocks: {with:?}"
    );
    assert!(
        with.creates < without.creates,
        "prefetch must reduce blocking scans ({} vs {})",
        with.creates,
        without.creates
    );
    assert_eq!(without.creates, without.full_scans);
}

#[test]
fn eviction_under_pressure_keeps_serving_correct_samples() {
    let table = std::sync::Arc::new(retail(42));
    let mut handler = SampleHandler::new(table.clone(), handler_cfg(1_500, 700, 29));
    let rules = [
        Rule::trivial(3),
        Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap(),
        Rule::from_pairs(&table, &[("Region", "MA-3")]).unwrap(),
        Rule::from_pairs(&table, &[("Product", "comforters")]).unwrap(),
    ];
    for round in 0..3 {
        for r in &rules {
            let s = handler.get_sample(r);
            assert!(
                handler.memory_used() <= 1_500,
                "round {round}: over capacity"
            );
            let est = s.view.total_weight();
            let truth = rule_count(&table.view(), r);
            assert!(
                (est - truth).abs() / truth < 0.3,
                "round {round}: {} estimated {est} vs {truth}",
                r.display(&table)
            );
        }
    }
    assert!(handler.stats.evictions > 0);
}
