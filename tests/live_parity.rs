//! Live-table workload-replay parity harness.
//!
//! The live serving mode (append-only ingest, epoch-bumping snapshots,
//! incremental sample maintenance) must be **invisible** in every response
//! byte: a drill-down executed against the live store at epoch `E` answers
//! exactly what the same drill-down answers against a frozen table
//! pre-grown to epoch `E`'s rows. Appends may only change *what data* a
//! session sees (at its next operation), never how a given epoch's data is
//! summarized.
//!
//! Three layers of assertion:
//!
//! 1. **Per-cell sweep** over segment sizes × residency budgets × cache
//!    on/off: seeded scripts interleaving appends with drill-down visits
//!    must produce, at every epoch, transcripts byte-identical to the same
//!    visit replayed against a frozen monolithic table holding exactly
//!    that epoch's rows (cache off, inline prefetch — the canonical
//!    reference).
//! 2. **No stale serving across epochs, at runtime**: the very same
//!    request bytes are replayed after every append; each replay must
//!    match *its own* epoch's frozen reference and differ from the
//!    previous epoch's transcript (the data grew — an estimate that did
//!    not move would mean a cached result leaked across the epoch
//!    boundary). These tests also run with debug assertions, so every
//!    cache hit inside the explorer is re-verified bit-for-bit against a
//!    fresh computation (`debug_assert!` in `Explorer::search`).
//! 3. **Concurrent clients**: same-seed sessions hammering one live
//!    server concurrently between appends must each match the frozen
//!    single-threaded reference byte for byte.
//!
//! The deferred exact-count refresh is the one deliberate asymmetry: a
//! live store answers `refresh` immediately (current estimates) and hands
//! the scan to the background worker, while a frozen store refreshes
//! synchronously. The *next* `rules` is therefore the comparable artifact
//! — both legs must show identical exact counts there — and the harness
//! asserts the live refresh reply itself is a well-formed `rules` payload.

use smart_drilldown::explorer::{ExplorerConfig, PrefetchMode};
use smart_drilldown::server::{
    Client, Engine, EngineConfig, Request, Server, ServerConfig, TailConfig,
};
use smart_drilldown::table::{LiveTable, LiveTableConfig, Schema, TableBuilder, TableStore};
use std::sync::Arc;

/// Rows appended per epoch.
const BATCH: usize = 400;
/// Appends interleaved into every script.
const EPOCHS: usize = 3;
/// Sampling seeds visiting at each epoch (a repeated seed maximizes
/// same-epoch cache sharing; a distinct one guards against collisions).
const SEEDS: [u64; 3] = [7, 7, 1234];

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic synthetic row `i` of the workload: skewed enough that
/// drill-downs find structure, varied enough that every epoch moves the
/// estimates.
fn row(i: usize) -> Vec<String> {
    let h = splitmix(i as u64);
    vec![
        format!("s{}", h % 6),
        format!("p{}", (h >> 8) % 11),
        format!("r{}", (h >> 16) % 4),
    ]
}

fn batch(epoch: usize) -> Vec<Vec<String>> {
    ((epoch - 1) * BATCH..epoch * BATCH).map(row).collect()
}

fn schema() -> Schema {
    Schema::new(["Store", "Product", "Region"]).expect("schema")
}

/// The frozen reference at `epoch`: a monolithic table holding exactly the
/// rows visible at that epoch, served cache-off with inline prefetch.
fn frozen_reference(epoch: usize) -> Engine {
    let mut b = TableBuilder::new(schema());
    for i in 0..epoch * BATCH {
        b.push_row(&row(i)).expect("row arity");
    }
    let table = Arc::new(b.build().expect("frozen build"));
    Engine::with_store(
        TableStore::Whole(table),
        EngineConfig {
            session: ExplorerConfig {
                prefetch: PrefetchMode::Inline,
                ..ExplorerConfig::default()
            },
            cache_bytes: 0,
            ..EngineConfig::default()
        },
    )
}

/// One analyst visit: open, a fixed mix of rule and star expansions, rule
/// listings, an exact-count refresh, the post-refresh listing, counters,
/// close. Returns the raw request lines — reusing a session name across
/// epochs yields byte-identical request sequences, the sharpest possible
/// staleness probe.
fn visit_lines(session: &str, seed: u64) -> Vec<String> {
    vec![
        format!(
            r#"{{"op":"open","session":"{session}","seed":"{seed}","k":3,"mw":3.0,"weight":"size","capacity":400,"min_ss":40}}"#
        ),
        format!(r#"{{"op":"expand","session":"{session}","path":[]}}"#),
        format!(r#"{{"op":"expand","session":"{session}","path":[0]}}"#),
        format!(r#"{{"op":"star","session":"{session}","path":[],"column":"Region"}}"#),
        format!(r#"{{"op":"expand","session":"{session}","path":[1]}}"#),
        format!(r#"{{"op":"rules","session":"{session}"}}"#),
        format!(r#"{{"op":"refresh","session":"{session}"}}"#),
        format!(r#"{{"op":"rules","session":"{session}"}}"#),
        format!(r#"{{"op":"stats","session":"{session}"}}"#),
        format!(r#"{{"op":"close","session":"{session}"}}"#),
    ]
}

/// Index of the `refresh` line in a visit — the one response excluded from
/// byte comparison (deferred on live stores, synchronous on frozen ones).
const REFRESH_OP: usize = 6;

/// Replays one visit through an engine, playing the background worker
/// whenever the engine asks for it, and returns the response lines.
fn replay(engine: &Engine, session: &str, seed: u64) -> Vec<String> {
    visit_lines(session, seed)
        .iter()
        .map(|line| {
            let (resp, hint) = engine.handle_line(line);
            if let Some(s) = hint {
                engine.run_pending_prefetch(&s);
            }
            resp
        })
        .collect()
}

/// Asserts a live-epoch transcript matches the frozen reference transcript
/// everywhere except the deferred-refresh reply, which must still be a
/// well-formed `rules` payload.
fn assert_visit_parity(live: &[String], frozen: &[String], cell: &str) {
    assert_eq!(live.len(), frozen.len(), "{cell}: transcript lengths");
    for (i, (l, f)) in live.iter().zip(frozen).enumerate() {
        if i == REFRESH_OP {
            assert!(
                l.contains(r#""ok":true"#) && l.contains(r#""op":"rules""#),
                "{cell}: live deferred refresh must answer a rules payload: {l}"
            );
            continue;
        }
        assert_eq!(l, f, "{cell}: op {i} diverged");
    }
}

/// The live-store configurations swept: segment sizes around and far from
/// the batch size, fully resident and spilling under a tight budget.
fn live_configs() -> Vec<LiveTableConfig> {
    let dir = std::env::temp_dir();
    vec![
        LiveTableConfig::in_memory(7),
        LiveTableConfig::in_memory(64),
        LiveTableConfig::in_memory(4096),
        LiveTableConfig::spilling(7, 1, dir.clone()),
        LiveTableConfig::spilling(64, 2, dir),
    ]
}

fn live_engine(config: &LiveTableConfig, cache_bytes: usize) -> Engine {
    let live = LiveTable::new(schema(), vec![], config).expect("live table");
    Engine::with_store(
        TableStore::from(Arc::new(live)),
        EngineConfig {
            tail: Some(TailConfig::default()),
            cache_bytes,
            ..EngineConfig::default()
        },
    )
}

fn append(engine: &Engine, epoch: usize) {
    let line = Request::Append {
        rows: batch(epoch),
        measures: vec![],
    }
    .to_json()
    .to_string();
    let (resp, _) = engine.handle_line(&line);
    assert!(resp.contains(r#""ok":true"#), "append failed: {resp}");
    assert_eq!(
        engine.live_info(),
        Some((epoch as u64, epoch * BATCH)),
        "epoch bookkeeping after append {epoch}"
    );
}

#[test]
fn live_visits_match_frozen_pregrown_tables_at_every_epoch() {
    // Frozen references are epoch-indexed and shared across the grid.
    // Session names depend only on the seed index so live request bytes
    // match reference request bytes exactly (the `open` reply echoes the
    // name); a closed session's name is legitimately reusable.
    let reference: Vec<Vec<Vec<String>>> = (1..=EPOCHS)
        .map(|epoch| {
            let frozen = frozen_reference(epoch);
            SEEDS
                .iter()
                .enumerate()
                .map(|(i, &seed)| replay(&frozen, &format!("visit-{i}"), seed))
                .collect()
        })
        .collect();

    for config in &live_configs() {
        for cache_bytes in [0usize, 64 << 20] {
            let cell = format!(
                "segment={} resident={} cache={}",
                config.rows_per_segment, config.resident, cache_bytes
            );
            let engine = live_engine(config, cache_bytes);
            let mut previous_epoch: Option<Vec<String>> = None;
            for epoch in 1..=EPOCHS {
                append(&engine, epoch);
                let mut first_of_epoch = None;
                for (i, &seed) in SEEDS.iter().enumerate() {
                    let live = replay(&engine, &format!("visit-{i}"), seed);
                    assert_visit_parity(
                        &live,
                        &reference[epoch - 1][i],
                        &format!("{cell} epoch={epoch} visit={i}"),
                    );
                    if i == 0 {
                        first_of_epoch = Some(live);
                    }
                }
                // Runtime staleness probe: this epoch's first visit and
                // the previous epoch's were byte-identical *requests*;
                // their responses must differ — the data grew, so
                // identical bytes would mean a cached result crossed the
                // epoch boundary.
                let first = first_of_epoch.expect("seed-7 visit ran");
                if let Some(prev) = previous_epoch.replace(first.clone()) {
                    assert_ne!(
                        prev, first,
                        "{cell}: epoch {epoch} served the previous epoch's bytes"
                    );
                }
            }
        }
    }
}

#[test]
fn same_epoch_visits_share_the_cache_and_appends_never_leak_across() {
    // The cache-effectiveness counterpart of the parity sweep: within one
    // epoch the repeated seed must actually hit the shared cache, and an
    // identical visit after an append must match the *new* epoch's frozen
    // reference — not the transcript the old entries would have produced.
    let engine = live_engine(&LiveTableConfig::in_memory(64), 64 << 20);
    append(&engine, 1);
    let first = replay(&engine, "probe", 7);
    let after_first = engine.cache_counters().map(|c| c.hits);
    let twin = replay(&engine, "probe", 7);
    assert_eq!(first, twin, "same epoch, same seed, same bytes");
    if let (Some(a), Some(b)) = (after_first, engine.cache_counters().map(|c| c.hits)) {
        assert!(b > a, "same-epoch same-seed visit never hit the cache");
    }

    append(&engine, 2);
    let fresh = replay(&engine, "probe", 7);
    let reference = replay(&frozen_reference(2), "probe", 7);
    assert_visit_parity(&fresh, &reference, "post-append epoch=2");
    assert_ne!(first, fresh, "the append must move the estimates");
}

#[test]
fn concurrent_live_clients_match_the_frozen_reference_between_appends() {
    const N_CLIENTS: usize = 3;
    let live = LiveTable::new(schema(), vec![], &LiveTableConfig::in_memory(64)).expect("live");
    let server = Server::bind_store(
        TableStore::from(Arc::new(live)),
        ServerConfig {
            engine: EngineConfig {
                tail: Some(TailConfig::default()),
                ..EngineConfig::default()
            },
            threads: N_CLIENTS + 2,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = server.addr();

    for epoch in 1..=EPOCHS {
        // Appends land between waves; each wave drills one fixed epoch
        // concurrently (same seed in every client — maximal cache-sharing
        // pressure on the live store).
        let mut writer = Client::connect(addr).expect("connect writer");
        let resp = writer
            .call_line(
                &Request::Append {
                    rows: batch(epoch),
                    measures: vec![],
                }
                .to_json()
                .to_string(),
            )
            .expect("append");
        assert!(resp.contains(r#""ok":true"#), "append failed: {resp}");

        let handles: Vec<_> = (0..N_CLIENTS)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    visit_lines(&format!("wave-{i}"), 7)
                        .iter()
                        .map(|line| client.call_line(line).expect("request"))
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        let frozen = frozen_reference(epoch);
        for (i, handle) in handles.into_iter().enumerate() {
            let transcript = handle.join().expect("client thread");
            let reference = replay(&frozen, &format!("wave-{i}"), 7);
            assert_visit_parity(
                &transcript,
                &reference,
                &format!("concurrent epoch={epoch} client={i}"),
            );
        }
    }
    server.shutdown();
}
