//! Integration test for **range rules** on numeric columns (paper §2.1:
//! "for a column with numerical values ... we allow the corresponding
//! rule-value to be a range"; §6.2 handles numerics by bucketization).
//!
//! Strategy: a numeric column is expanded into a nested bucket hierarchy
//! (`Price.L0` coarse, `Price.L1` fine); the optimizer then discovers hot
//! ranges at whichever granularity pays off.

use rand::{rngs::StdRng, Rng, SeedableRng};
use smart_drilldown::core::{Brs, ColumnWeight, SizeWeight};
use smart_drilldown::table::bucketize::hierarchy;
use smart_drilldown::table::{Schema, Table, TableBuilder};

/// 1500 sales: 1000 background rows with uniform prices, 500 "promo" rows
/// concentrated in the 40–60 price band.
fn sales_table() -> (Table, f64, f64) {
    let mut rng = StdRng::seed_from_u64(77);
    let mut categories: Vec<&str> = Vec::new();
    let mut prices: Vec<f64> = Vec::new();
    for _ in 0..1000 {
        categories.push("regular");
        prices.push(rng.gen_range(0.0..100.0));
    }
    for _ in 0..500 {
        categories.push("promo");
        prices.push(rng.gen_range(40.0..60.0));
    }

    let h = hierarchy(&prices, 4, 2).expect("valid numeric data");
    let schema = Schema::new(["Category", "Price.L0", "Price.L1"]).unwrap();
    let mut b = TableBuilder::new(schema);
    for (i, &cat) in categories.iter().enumerate() {
        b.push_row(&[cat, &h.labels[0][i], &h.labels[1][i]])
            .unwrap();
    }
    (b.build().unwrap(), 40.0, 60.0)
}

fn parse_range(label: &str) -> (f64, f64) {
    // Labels look like "[40, 60)".
    let inner = label.trim_start_matches('[').trim_end_matches(')');
    let mut parts = inner.split(", ");
    let lo: f64 = parts.next().unwrap().parse().unwrap();
    let hi: f64 = parts.next().unwrap().parse().unwrap();
    (lo, hi)
}

#[test]
fn optimizer_finds_the_hot_price_range() {
    let (table, band_lo, band_hi) = sales_table();
    let result = Brs::new(&SizeWeight)
        .with_max_weight(2.0)
        .run(&table.view(), 4);

    // Some displayed rule must pin a price range overlapping the promo band
    // with a concentrated count.
    let price_cols = [1usize, 2];
    let mut found = false;
    for s in &result.rules {
        for &c in &price_cols {
            if let smart_drilldown::core::RuleValue::Value(code) = s.rule.get(c) {
                let label = table.dictionary(c).value_of(code).unwrap();
                let (lo, hi) = parse_range(label);
                if lo < band_hi && hi > band_lo {
                    found = true;
                }
            }
        }
    }
    assert!(
        found,
        "no displayed rule pinned a price range near the promo band: {:?}",
        result
            .rules
            .iter()
            .map(|s| s.rule.display(&table))
            .collect::<Vec<_>>()
    );
}

#[test]
fn promo_category_pairs_with_its_price_range() {
    let (table, band_lo, band_hi) = sales_table();
    // Drill into the promo category.
    let promo = smart_drilldown::core::Rule::from_pairs(&table, &[("Category", "promo")]).unwrap();
    let result = smart_drilldown::core::drill_down(&table.view(), &SizeWeight, &promo, 3);
    assert!(!result.rules.is_empty());
    // Every child pins a price bucket; the biggest ones must overlap 40–60.
    let top = &result.rules[0];
    let pinned = (1..3)
        .filter_map(|c| match top.rule.get(c) {
            smart_drilldown::core::RuleValue::Value(code) => {
                Some(parse_range(table.dictionary(c).value_of(code).unwrap()))
            }
            _ => None,
        })
        .next()
        .expect("child instantiates a price level");
    assert!(
        pinned.0 < band_hi && pinned.1 > band_lo,
        "top promo range {pinned:?} misses the 40-60 band"
    );
}

#[test]
fn level_weights_steer_granularity() {
    let (table, _, _) = sales_table();
    // Weighting the fine level much higher pushes the optimizer to fine
    // ranges; weighting the coarse level higher pushes it to coarse ones.
    let fine_lover = ColumnWeight::new(vec![0.5, 0.5, 4.0], 1.0);
    let coarse_lover = ColumnWeight::new(vec![0.5, 4.0, 0.5], 1.0);
    let fine = Brs::new(&fine_lover).run(&table.view(), 3);
    let coarse = Brs::new(&coarse_lover).run(&table.view(), 3);

    let uses = |res: &smart_drilldown::core::BrsResult, col: usize| {
        res.rules.iter().filter(|s| !s.rule.is_star(col)).count()
    };
    assert!(
        uses(&fine, 2) >= uses(&coarse, 2),
        "fine-level preference ignored"
    );
    assert!(
        uses(&coarse, 1) >= uses(&fine, 1),
        "coarse-level preference ignored"
    );
}
