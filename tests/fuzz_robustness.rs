//! Failure-injection and fuzz tests: hostile inputs must produce `Err`s,
//! never panics, and long random interaction sequences must preserve the
//! system's invariants.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use smart_drilldown::core::{Rule, SizeWeight};
use smart_drilldown::prelude::*;
use smart_drilldown::sampling::PrefetchEntry;
use smart_drilldown::table::bucketize::{equal_depth, equal_width, hierarchy};
use smart_drilldown::table::csv::read_csv;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes-as-text never panic the CSV parser.
    #[test]
    fn csv_parser_never_panics(input in ".{0,200}") {
        let _ = read_csv(&input); // Ok or Err — both fine, no panic.
    }

    /// CSV with quote/comma/newline soup never panics.
    #[test]
    fn csv_parser_survives_quote_soup(parts in proptest::collection::vec("[\",\\n\\r a-z]{0,12}", 0..20)) {
        let input = parts.join("");
        let _ = read_csv(&input);
    }

    /// Bucketizers reject or handle any finite input without panicking.
    #[test]
    fn bucketizers_never_panic(values in proptest::collection::vec(-1e12f64..1e12, 0..50), n in 0usize..12) {
        let _ = equal_width(&values, n);
        let _ = equal_depth(&values, n);
        if n > 0 && !values.is_empty() {
            let h = hierarchy(&values, n.max(2), 2).unwrap();
            prop_assert_eq!(h.assignments[0].len(), values.len());
        }
    }

    /// Session navigation with random (often invalid) paths returns errors,
    /// never panics, and keeps the tree consistent.
    #[test]
    fn session_random_navigation(ops in proptest::collection::vec((0u8..4, proptest::collection::vec(0usize..5, 0..3)), 1..25)) {
        let table = Table::from_rows(
            Schema::new(["A", "B"]).unwrap(),
            &[
                &["a", "x"], &["a", "x"], &["a", "y"], &["b", "y"],
                &["b", "z"], &["c", "x"], &["c", "x"], &["a", "z"],
            ],
        ).unwrap();
        let table = std::sync::Arc::new(table);
        let mut session = Session::new(table.clone(), Box::new(SizeWeight), 2);
        for (op, path) in &ops {
            match op {
                0 => { let _ = session.expand(path); }
                1 => { let _ = session.expand_star(path, path.first().copied().unwrap_or(0) % 2); }
                2 => { let _ = session.collapse(path); }
                _ => { let _ = session.render(); }
            }
            // Invariants: every visible child is a strict super-rule of its
            // parent; counts do not exceed the table size.
            let visible = session.visible();
            for (_, node) in &visible {
                prop_assert!(node.count <= table.n_rows() as f64 + 1e-9);
            }
        }
    }
}

/// A long randomized interaction against the SampleHandler keeps memory
/// within the cap and every estimate within a loose factor of the truth.
#[test]
fn handler_stateful_random_ops() {
    let table = std::sync::Arc::new(retail(42));
    let view = table.view();
    let rules = [
        Rule::trivial(3),
        Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap(),
        Rule::from_pairs(&table, &[("Region", "MA-3")]).unwrap(),
        Rule::from_pairs(&table, &[("Product", "comforters")]).unwrap(),
        Rule::from_pairs(&table, &[("Store", "Target"), ("Product", "bicycles")]).unwrap(),
        Rule::from_pairs(&table, &[("Store", "Walmart"), ("Product", "cookies")]).unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(4242);
    let mut handler = SampleHandler::new(
        table.clone(),
        SampleHandlerConfig {
            capacity: 3_000,
            min_sample_size: 600,
            seed: 9,
            strategy: AllocationStrategy::Dp,
        },
    );

    for step in 0..120 {
        match rng.gen_range(0..10) {
            0 => handler.clear(),
            1 => {
                let parent = rules[rng.gen_range(0..2)].clone();
                let entries: Vec<PrefetchEntry> = (0..2)
                    .map(|_| {
                        let r = rules[rng.gen_range(0..rules.len())].clone();
                        PrefetchEntry {
                            rule: r,
                            probability: 0.5,
                            selectivity: rng.gen_range(0.05..1.0),
                        }
                    })
                    .filter(|e| parent.is_sub_rule_of(&e.rule))
                    .collect();
                let _ = handler.prefetch(&parent, &entries);
            }
            _ => {
                let rule = &rules[rng.gen_range(0..rules.len())];
                let sample = handler.get_sample(rule);
                let est = sample.view.total_weight();
                let truth = smart_drilldown::core::rule_count(&view, rule);
                assert!(
                    (est - truth).abs() / truth.max(1.0) < 0.6,
                    "step {step}: estimate {est} too far from {truth} for {}",
                    rule.display(&table)
                );
            }
        }
        assert!(
            handler.memory_used() <= 3_000,
            "step {step}: memory {} over cap",
            handler.memory_used()
        );
    }
    // The workload must have exercised all three mechanisms.
    let stats = handler.stats;
    assert!(stats.finds > 0 && stats.creates > 0, "{stats:?}");
}

/// Zero-row and single-row tables flow through the whole stack.
#[test]
fn degenerate_tables_are_handled() {
    let empty = Table::from_rows(Schema::new(["A", "B"]).unwrap(), &[] as &[&[&str]]).unwrap();
    let res = Brs::new(&SizeWeight).run(&empty.view(), 3);
    assert!(res.rules.is_empty());

    let single = Table::from_rows(Schema::new(["A", "B"]).unwrap(), &[&["x", "y"]]).unwrap();
    let res = Brs::new(&SizeWeight).run(&single.view(), 3);
    assert_eq!(res.rules.len(), 1);
    assert_eq!(res.rules[0].count, 1.0);
    assert_eq!(res.rules[0].rule.size(), 2);

    let mut session = Session::new(std::sync::Arc::new(single), Box::new(SizeWeight), 3);
    session.expand(&[]).unwrap();
    assert_eq!(session.visible().len(), 2);
}

/// A table with one column and one value: the optimizer terminates with
/// the single possible rule.
#[test]
fn constant_table() {
    let rows: Vec<[&str; 1]> = vec![["same"]; 50];
    let t = Table::from_rows(Schema::new(["A"]).unwrap(), &rows).unwrap();
    let res = Brs::new(&SizeWeight).run(&t.view(), 5);
    assert_eq!(res.rules.len(), 1);
    assert_eq!(res.rules[0].count, 50.0);
}
