//! The concurrency determinism harness: N client threads drive seeded
//! command scripts against one TCP server (deferred background prefetch,
//! lock-striped registry, connection pool), and every per-session response
//! transcript must be **byte-identical** to a single-threaded replay of the
//! same script through a fresh in-process [`Engine`] running prefetch
//! inline.
//!
//! This pins the whole tentpole stack at once: shared-nothing sessions,
//! per-session locking, the deferred-prefetch handoff (worker vs. next
//! request races), deterministic sampling, and deterministic JSON
//! serialization. Any cross-session leak, lock misordering, or
//! schedule-dependent sample draw shows up as a transcript diff.

use smart_drilldown::datagen::retail;
use smart_drilldown::explorer::{ExplorerConfig, PrefetchMode};
use smart_drilldown::server::{
    Client, Engine, EngineConfig, Json, OpenOptions, Request, Response, Server, ServerConfig,
};
use smart_drilldown::table::{ShardConfig, ShardedTable, Table, TableStore};
use std::sync::Arc;

const N_CLIENTS: usize = 6;
const N_COMMANDS: usize = 14;

/// Anything that can answer one protocol line — a real TCP connection or a
/// direct in-process engine. The driver below only sees this trait, so the
/// *exact same* request bytes flow through both.
trait Transport {
    fn call_line(&mut self, line: &str) -> String;
}

struct Tcp(Client);

impl Transport for Tcp {
    fn call_line(&mut self, line: &str) -> String {
        self.0.call_line(line).expect("tcp request")
    }
}

struct Direct<'e>(&'e Engine);

impl Transport for Direct<'_> {
    fn call_line(&mut self, line: &str) -> String {
        self.0.handle_line(line).0
    }
}

/// SplitMix64 — deterministic script randomness, seeded per client.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

/// Drives one session's scripted command sequence over `transport` and
/// returns the full response transcript (raw lines, in order).
///
/// The script adapts to responses (it expands paths it has seen exist), but
/// the adaptation is a pure function of the transcript — so identical
/// responses produce identical follow-up requests, and the whole exchange
/// is reproducible.
fn drive_session(transport: &mut dyn Transport, name: &str, seed: u64) -> Vec<String> {
    let mut transcript = Vec::new();
    let mut send = |transport: &mut dyn Transport, req: &Request| -> String {
        let line = transport.call_line(&req.to_json().to_string());
        transcript.push(line.clone());
        line
    };

    let open = Request::Open {
        session: name.to_owned(),
        options: OpenOptions {
            k: Some(3),
            max_weight: Some(3.0),
            weight: Some("size".to_owned()),
            seed: Some(seed),
            capacity: Some(20_000),
            min_ss: Some(1_000),
        },
    };
    send(transport, &open);

    // Star targets: three real columns plus one bogus one, so the script
    // also exercises deterministic error payloads.
    let columns = ["Store", "Product", "Region", "Price"];
    let mut rng = Rng(seed);
    let mut known: Vec<Vec<usize>> = vec![vec![]];

    for _ in 0..N_COMMANDS {
        let session = name.to_owned();
        let req = match rng.next() % 10 {
            0..=4 => Request::Expand {
                session,
                path: rng.pick(&known).clone(),
            },
            5 => Request::Star {
                session,
                path: rng.pick(&known).clone(),
                column: (*rng.pick(&columns)).to_owned(),
            },
            6 => Request::Collapse {
                session,
                path: rng.pick(&known).clone(),
            },
            7 => Request::Rules { session },
            8 => Request::Render { session },
            _ => Request::Stats { session },
        };
        let response_line = send(transport, &req);
        let response = Response::from_json(&Json::parse(&response_line).expect("response json"))
            .expect("typed response");
        // Track the visible tree from responses only.
        match (&req, response) {
            (
                Request::Expand { path, .. } | Request::Star { path, .. },
                Response::Expanded { rules },
            ) => {
                known.retain(|p| !(p.len() > path.len() && p.starts_with(path)));
                known.extend(rules.into_iter().map(|r| r.path));
            }
            (Request::Collapse { path, .. }, Response::Collapsed) => {
                known.retain(|p| !(p.len() > path.len() && p.starts_with(path)));
            }
            _ => {}
        }
    }

    // Closing snapshot: the full tree, the rendered display, every counter,
    // and two guaranteed error payloads (invalid path, unknown column) —
    // the strongest equality the protocol can express.
    for req in [
        Request::Rules {
            session: name.to_owned(),
        },
        Request::Render {
            session: name.to_owned(),
        },
        Request::Expand {
            session: name.to_owned(),
            path: vec![9, 9],
        },
        Request::Star {
            session: name.to_owned(),
            path: vec![],
            column: "Price".to_owned(),
        },
        Request::Refresh {
            session: name.to_owned(),
        },
        Request::Stats {
            session: name.to_owned(),
        },
    ] {
        send(transport, &req);
    }
    transcript
}

fn session_name(i: usize) -> String {
    format!("client-{i}")
}

fn session_seed(i: usize) -> u64 {
    0xC11E_0000 + i as u64
}

/// Replays every client's script single-threaded through a fresh engine
/// with **inline** prefetch — the reference semantics.
fn sequential_reference(table: &Arc<Table>) -> Vec<Vec<String>> {
    let engine = Engine::new(
        table.clone(),
        EngineConfig {
            session: ExplorerConfig {
                prefetch: PrefetchMode::Inline,
                ..ExplorerConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    (0..N_CLIENTS)
        .map(|i| drive_session(&mut Direct(&engine), &session_name(i), session_seed(i)))
        .collect()
}

#[test]
fn concurrent_sessions_match_sequential_replay_byte_for_byte() {
    let table = Arc::new(retail(42));

    // Concurrent phase: one TCP server, deferred background prefetch, one
    // OS thread per client hammering its own session with no think-time —
    // the worst case for the prefetch worker race.
    let server = Server::bind(
        table.clone(),
        ServerConfig {
            engine: EngineConfig::default(), // PrefetchMode::Deferred
            threads: N_CLIENTS + 2,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = server.addr();

    let handles: Vec<_> = (0..N_CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let client = Client::connect(addr).expect("connect");
                drive_session(&mut Tcp(client), &session_name(i), session_seed(i))
            })
        })
        .collect();
    let concurrent: Vec<Vec<String>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    // Sessions are connection-scoped: once every client has disconnected
    // (no script sends `close`), the server must reap all of them — the
    // leak regression check, under maximum connection churn.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.engine().n_sessions() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "registry stuck at {} sessions after all clients disconnected",
            server.engine().n_sessions()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    server.shutdown();

    // Reference phase: same scripts, fresh engine, single thread, inline
    // prefetch.
    let reference = sequential_reference(&table);

    for (i, (conc, refr)) in concurrent.iter().zip(&reference).enumerate() {
        assert_eq!(
            conc.len(),
            refr.len(),
            "client {i}: transcript length diverged"
        );
        for (step, (a, b)) in conc.iter().zip(refr).enumerate() {
            assert_eq!(
                a, b,
                "client {i} step {step}: concurrent response differs from \
                 sequential replay"
            );
        }
    }

    // The scripts must have actually exercised the machinery: expansions,
    // at least one error payload, and memory-served drill-downs.
    let all = concurrent.concat().join("\n");
    assert!(all.contains("\"op\":\"expand\""), "no expansions happened");
    assert!(
        all.contains("unknown column") || all.contains("no node at path"),
        "scripts never hit an error path"
    );
    assert!(
        all.contains("\"served_from_memory\""),
        "stats were never sampled"
    );
}

#[test]
fn sharded_spilling_server_matches_monolithic_sequential_replay() {
    // The same concurrent-client harness, but the served table is split
    // into 8 shards with only 2 resident at a time — every sample scan and
    // refresh streams through the spill tier while N clients hammer their
    // sessions concurrently. Transcripts must stay byte-identical to the
    // *monolithic* single-threaded replay: sharding + spilling + eviction
    // + concurrency together must not move a single byte.
    let table = Arc::new(retail(42));
    let sharded = Arc::new(
        ShardedTable::from_table(&table, &ShardConfig::spilling(8, 2, std::env::temp_dir()))
            .expect("shard build"),
    );

    let server = Server::bind_store(
        TableStore::Sharded(sharded.clone()),
        ServerConfig {
            engine: EngineConfig::default(), // PrefetchMode::Deferred
            threads: N_CLIENTS + 2,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = server.addr();

    let handles: Vec<_> = (0..N_CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let client = Client::connect(addr).expect("connect");
                drive_session(&mut Tcp(client), &session_name(i), session_seed(i))
            })
        })
        .collect();
    let concurrent: Vec<Vec<String>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    server.shutdown();
    assert!(
        sharded.loads() > 0 && sharded.evictions() > 0,
        "the spill/eviction path was never exercised (loads {}, evictions {})",
        sharded.loads(),
        sharded.evictions()
    );

    // Reference: the same scripts through a *monolithic* in-process engine,
    // single-threaded, inline prefetch.
    let reference = sequential_reference(&table);
    for (i, (conc, refr)) in concurrent.iter().zip(&reference).enumerate() {
        assert_eq!(conc.len(), refr.len(), "client {i}: transcript length");
        for (step, (a, b)) in conc.iter().zip(refr).enumerate() {
            assert_eq!(
                a, b,
                "client {i} step {step}: sharded concurrent response differs \
                 from monolithic sequential replay"
            );
        }
    }
}

#[test]
fn concurrent_run_is_stable_across_repeats() {
    // Two independent concurrent runs (fresh server each) must agree with
    // each other, not just with the replay — catches nondeterminism that
    // happens to cancel against a reference built the same way.
    let table = Arc::new(retail(42));
    let run = || -> Vec<Vec<String>> {
        let server = Server::bind(
            table.clone(),
            ServerConfig {
                engine: EngineConfig::default(),
                threads: N_CLIENTS + 2,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind")
        .spawn()
        .expect("spawn");
        let addr = server.addr();
        let handles: Vec<_> = (0..N_CLIENTS)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = Client::connect(addr).expect("connect");
                    drive_session(&mut Tcp(client), &session_name(i), session_seed(i))
                })
            })
            .collect();
        let out = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        server.shutdown();
        out
    };
    assert_eq!(run(), run());
}
