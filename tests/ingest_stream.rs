//! Streaming out-of-core ingest suite: the memory-bound build guarantee
//! (ingest never materializes the monolithic table), pin-aware residency
//! accounting under concurrent scans, the sweep eviction policy, and the
//! CSV-file end-to-end path (stream ingest ⇔ materialize-then-shard
//! bit-identity, up through served engine transcripts).
//!
//! Complements `tests/shard_parity.rs`, which runs every cross-shard parity
//! case on both construction paths; this file owns the *resource* contracts
//! (what is in memory, when) that parity alone cannot see.

use smart_drilldown::core::{
    find_best_marginal_rule, find_best_marginal_rule_sharded, SearchOptions, SearchScratch,
    SizeWeight,
};
use smart_drilldown::datagen::{census, retail};
use smart_drilldown::server::{Engine, EngineConfig, OpenOptions, Request};
use smart_drilldown::table::csv::{read_csv_with_measures, stream_csv_file, write_csv};
use smart_drilldown::table::{
    Residency, ShardConfig, ShardedTable, ShardedView, Table, TableStore,
};
use std::sync::{Arc, Barrier};

/// Writes `table` as a CSV fixture under the temp dir, named uniquely per
/// process and call site.
fn csv_fixture(table: &Table, tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("sdd-ingest-{}-{tag}.csv", std::process::id()));
    std::fs::write(&path, write_csv(table)).expect("write CSV fixture");
    path
}

fn spilling(shards: usize, resident: usize) -> ShardConfig {
    ShardConfig::spilling(shards, resident, std::env::temp_dir())
}

// ---------------------------------------------------------------------------
// Memory-bound build
// ---------------------------------------------------------------------------

/// The acceptance-criterion test: an ingest with `resident = 1` completes
/// without ever materializing the monolithic table. The counters pin the
/// whole story — every segment is spilled exactly once as it seals
/// (`spills == n_shards`), nothing is ever read back or decoded during the
/// build (`loads == 0`, `evictions == 0`, `peak_resident == 0`), and the
/// first scan afterwards holds at most `resident + 1` decoded segments at
/// a time (the resident one plus the in-flight pin).
#[test]
fn streaming_ingest_with_resident_one_is_memory_bound() {
    let table = census(8_000, 1990).project_first_columns(3);
    let path = csv_fixture(&table, "membound");
    let st = stream_csv_file(&path, &[], &spilling(10, 1)).expect("stream ingest");
    assert_eq!(st.n_rows(), table.n_rows());
    assert_eq!(st.n_shards(), 10);

    // Build-time counters: the build streamed.
    assert_eq!(st.spills(), 10, "each segment spilled exactly once");
    assert_eq!(st.loads(), 0, "the build never read a segment back");
    assert_eq!(st.evictions(), 0, "nothing was cached, so nothing evicted");
    assert_eq!(
        st.peak_resident(),
        0,
        "no decoded segment existed during the build — the monolithic table was never materialized"
    );

    // A full sequential scan decodes segments one at a time under the
    // budget and reproduces the reference columns exactly.
    for i in 0..st.n_shards() {
        let seg = st.try_segment(i).unwrap();
        for c in 0..table.n_columns() {
            assert_eq!(
                seg.col(c),
                &table.column(c)[seg.span()],
                "shard {i} col {c}"
            );
        }
    }
    assert_eq!(st.loads(), 10, "cold cache: one load per shard");
    assert!(
        st.peak_resident() <= 1 + 1,
        "scan held {} decoded segments; budget 1 allows resident + 1",
        st.peak_resident()
    );
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Pin-aware budget accounting
// ---------------------------------------------------------------------------

/// Regression for the ROADMAP known issue: in-flight segment `Arc`s used to
/// leave the cache's resident count dishonest (evicted-but-held segments
/// occupied memory the budget never saw). Pinned segments now stay in the
/// cache and count against the budget: under `resident = 1` with
/// concurrent scans, every atomic snapshot satisfies
/// `resident ≤ resident_budget + pinned`.
#[test]
fn concurrent_scans_stay_within_resident_plus_pinned() {
    let table = Arc::new(census(3_000, 7).project_first_columns(3));
    let st = Arc::new(ShardedTable::from_table(&table, &spilling(6, 1)).expect("shard build"));
    let threads = 4usize;
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let (st, table, barrier) = (st.clone(), table.clone(), barrier.clone());
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for pass in 0..3 {
                for i in 0..st.n_shards() {
                    // Hold the pin across the verification scan, as a real
                    // kernel pass does.
                    let seg = st.try_segment(i).unwrap();
                    for c in 0..table.n_columns() {
                        assert_eq!(
                            seg.col(c),
                            &table.column(c)[seg.span()],
                            "thread {t} pass {pass} shard {i} col {c}"
                        );
                    }
                }
            }
        }));
    }
    barrier.wait();
    // Sample the invariant while the scans churn the cache.
    for _ in 0..2_000 {
        let (resident, pinned) = st.resident_and_pinned();
        assert!(
            resident <= st.resident_budget() + pinned,
            "budget busted: {resident} resident with {pinned} pinned under budget {}",
            st.resident_budget()
        );
        assert!(pinned <= threads + 1, "more pins than pinners");
    }
    for h in handles {
        h.join().expect("scan thread");
    }
    // All pins released: the cache settles back to the budget.
    let (resident, pinned) = st.resident_and_pinned();
    assert_eq!(pinned, 0);
    assert!(resident <= st.resident_budget());
}

// ---------------------------------------------------------------------------
// Sweep residency
// ---------------------------------------------------------------------------

/// `Residency::Sweep` changes spill traffic only: the marginal search over
/// a sweep-evicting table is bit-identical to the monolithic kernel, while
/// repeated sequential scans pay strictly fewer loads than LRU (whose
/// cyclic-sweep behavior — evict exactly what is needed next — is the
/// policy's documented worst case).
#[test]
fn sweep_residency_is_bit_identical_with_fewer_loads() {
    let table = retail(42);
    let cov = vec![0.0f64; table.n_rows()];
    let mut opts = SearchOptions::new(3.0);
    opts.parallel = false;
    let mono = find_best_marginal_rule(&table.view(), &SizeWeight, &cov, &opts)
        .expect("retail yields a rule");

    let loads_for = |residency: Residency| {
        let cfg = spilling(8, 3).with_residency(residency);
        let st = Arc::new(ShardedTable::from_table(&table, &cfg).expect("shard build"));
        let view = ShardedView::all(st.clone());
        for _pass in 0..3 {
            let mut scratch = SearchScratch::new();
            let got =
                find_best_marginal_rule_sharded(&view, &SizeWeight, &cov, &opts, &mut scratch)
                    .expect("sharded search yields a rule");
            assert_eq!(got.rule, mono.rule, "{residency:?}: winner differs");
            assert_eq!(
                got.marginal_value.to_bits(),
                mono.marginal_value.to_bits(),
                "{residency:?}: marginal bits differ"
            );
            assert_eq!(
                got.count.to_bits(),
                mono.count.to_bits(),
                "{residency:?}: count bits"
            );
        }
        st.loads()
    };
    let lru = loads_for(Residency::Lru);
    let sweep = loads_for(Residency::Sweep);
    assert!(
        sweep < lru,
        "sweep must beat LRU on repeated sequential scans: {sweep} vs {lru} loads"
    );
}

// ---------------------------------------------------------------------------
// CSV end-to-end
// ---------------------------------------------------------------------------

/// One scripted protocol session (raw request lines, in order).
fn session_script(name: &str) -> Vec<String> {
    let session = name.to_owned();
    let reqs = [
        Request::TableInfo,
        Request::Open {
            session: session.clone(),
            options: OpenOptions {
                k: Some(3),
                max_weight: Some(3.0),
                weight: Some("size".to_owned()),
                seed: Some(11),
                capacity: Some(20_000),
                min_ss: Some(1_000),
            },
        },
        Request::Expand {
            session: session.clone(),
            path: vec![],
        },
        Request::Expand {
            session: session.clone(),
            path: vec![0],
        },
        Request::Rules {
            session: session.clone(),
        },
        Request::Render {
            session: session.clone(),
        },
        Request::Refresh {
            session: session.clone(),
        },
        Request::Stats { session },
    ];
    reqs.iter().map(|r| r.to_json().to_string()).collect()
}

/// The full out-of-core pipeline on a real CSV file with a measure column:
/// `stream_csv_file` must be bit-identical to `read_csv_with_measures` +
/// `from_table` — segment columns, spill bytes, measures — and an [`Engine`]
/// serving the streamed store must produce byte-identical transcripts to
/// one serving the materialized monolithic table, while its storage
/// counters show the spill tier actually carried the session.
#[test]
fn csv_stream_ingest_matches_materialized_ingest_up_to_served_transcripts() {
    let table = retail(42);
    let path = csv_fixture(&table, "e2e");
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    let materialized = read_csv_with_measures(&text, &["Sales"]).expect("parse CSV");

    for cfg in [spilling(8, 2), ShardConfig::in_memory(5), spilling(4, 1)] {
        let streamed = Arc::new(stream_csv_file(&path, &["Sales"], &cfg).expect("stream ingest"));
        let reference =
            Arc::new(ShardedTable::from_table(&materialized, &cfg).expect("shard build"));
        assert_eq!(streamed.spans(), reference.spans());
        for i in 0..streamed.n_shards() {
            if let (Some(pa), Some(pb)) = (streamed.spill_path(i), reference.spill_path(i)) {
                assert_eq!(
                    std::fs::read(pa).unwrap(),
                    std::fs::read(pb).unwrap(),
                    "shard {i}: spill files differ"
                );
            }
            let (sa, sb) = (
                streamed.try_segment(i).unwrap(),
                reference.try_segment(i).unwrap(),
            );
            for c in 0..streamed.n_columns() {
                assert_eq!(sa.col(c), sb.col(c), "shard {i} col {c}");
            }
            let (ma, mb) = (
                sa.table().measure("Sales").unwrap(),
                sb.table().measure("Sales").unwrap(),
            );
            assert_eq!(
                ma.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                mb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "shard {i}: Sales bits differ"
            );
        }

        // Served transcripts: streamed store vs the monolithic table.
        let script = session_script("ingest-e2e");
        let run = |engine: &Engine| -> Vec<String> {
            script.iter().map(|l| engine.handle_line(l).0).collect()
        };
        let mono_engine = Engine::new(Arc::new(materialized.clone()), EngineConfig::default());
        let stream_engine = Engine::with_store(
            TableStore::Sharded(streamed.clone()),
            EngineConfig::default(),
        );
        assert!(mono_engine.storage_counters().is_none());
        assert_eq!(
            run(&stream_engine),
            run(&mono_engine),
            "served transcripts diverge on the streamed store"
        );
        let (loads, _evictions, spills, peak) = stream_engine
            .storage_counters()
            .expect("sharded store has counters");
        if cfg.resident > 0 {
            assert!(loads > 0, "the served session never touched the spill tier");
            assert_eq!(spills, streamed.n_shards() as u64);
            // The honest peak bound for a served session is budget + the
            // most segments any operation pins at once: `gather_rows`
            // (sample materialization) deliberately pins every distinct
            // shard of a reservoir up front — under the old accounting the
            // same bytes were in flight but invisible to the counter.
            assert!(
                peak <= cfg.resident + streamed.n_shards(),
                "peak {peak} exceeds budget {} + {} pinnable shards",
                cfg.resident,
                streamed.n_shards()
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// Structural and numeric CSV errors surface from the streaming path with
/// the same classifications as the materializing reader, and a failed
/// ingest cleans up after itself (no table, no panic).
#[test]
fn stream_ingest_surfaces_csv_errors() {
    use smart_drilldown::table::TableError;
    let cases: &[(&str, &str)] = &[
        ("a,b\n1,2\n3\n", "arity"),
        ("a\n\"oops\n", "quote"),
        ("Store,Sales\nWalmart,lots\n", "measure"),
        ("", "empty"),
    ];
    for (text, what) in cases {
        let path = csv_fixture_text(text, what);
        let measures: &[&str] = if *what == "measure" { &["Sales"] } else { &[] };
        let got = stream_csv_file(&path, measures, &spilling(3, 1));
        match (what, got) {
            (&"arity", Err(TableError::Csv { line, .. })) => assert_eq!(line, 3),
            (&"quote", Err(TableError::Csv { .. })) => {}
            (&"measure", Err(TableError::ParseNumber(v))) => assert_eq!(v, "lots"),
            (&"empty", Err(TableError::Empty)) => {}
            (what, got) => panic!("{what}: unexpected result {got:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}

fn csv_fixture_text(text: &str, tag: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("sdd-ingest-err-{}-{tag}.csv", std::process::id()));
    std::fs::write(&path, text).expect("write CSV fixture");
    path
}
