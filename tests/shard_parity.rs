//! Cross-shard parity suite: the full drill-down pipeline over a
//! [`ShardedTable`] must be **bit-identical** to the monolithic [`Table`]
//! path — marginal search, BRS, drill-downs, sample stores, explorer
//! sessions, and server transcripts — across shard counts 1..=8 and
//! resident-shard budgets that force segments to spill to disk and be
//! evicted/reloaded mid-pipeline.
//!
//! The determinism contract under test (see `sdd_table::shard` and
//! `sdd_core::shard`): the shard layout partitions rows in order, sharded
//! scans accumulate shard-after-shard in exactly the monolithic operation
//! order, and spill round-trips reproduce segments bit-for-bit — so *where
//! bytes live* (RAM vs disk, one shard vs eight) can never change a result.
//!
//! `SDD_SHARD_RESIDENT` (CI knob) caps the spilling budget so the suite
//! exercises maximal eviction churn: `SDD_SHARD_RESIDENT=1` keeps at most
//! one segment in memory at any time.

use rand::{rngs::StdRng, Rng, SeedableRng};
use smart_drilldown::core::{
    count_rules, count_rules_sharded, covered_positions, covered_positions_sharded, covered_rows,
    covered_rows_sharded, drill_down_sharded, drill_down_with, filter_to_rule,
    filter_to_rule_sharded, find_best_marginal_rule, find_best_marginal_rule_sharded, rule_count,
    rule_count_sharded, score_list, score_list_sharded, sort_by_weight_desc,
    sort_by_weight_desc_sharded, star_drill_down_sharded, star_drill_down_with, BitsWeight, Brs,
    ListScore, Rule, SearchOptions, SearchScratch, SizeWeight, WeightFn,
};
use smart_drilldown::datagen::retail;
use smart_drilldown::explorer::{Explorer, ExplorerConfig, PrefetchMode};
use smart_drilldown::sampling::{
    AllocationStrategy, SampleHandler, SampleHandlerConfig, StoredSampleInfo,
};
use smart_drilldown::server::{Engine, EngineConfig, OpenOptions, Request};
use smart_drilldown::table::{
    Schema, ShardBuilder, ShardConfig, ShardedTable, ShardedView, Table, TableStore, TableView,
};
use std::sync::Arc;

/// Serializes every test in this binary: `sharded_search_is_thread_invariant`
/// writes the process-global `SDD_THREADS` while every other test reads the
/// environment (`worker_threads`, `SDD_SHARD_RESIDENT`) — and concurrent
/// `setenv`/`getenv` is undefined behavior on glibc, not merely a race. All
/// tests take this lock; other test *binaries* are separate processes.
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .expect("env lock poisoned")
}

/// Shard counts the whole suite sweeps (the acceptance range).
const SHARD_COUNTS: std::ops::RangeInclusive<usize> = 1..=8;

/// The spilling resident budgets to exercise (both force eviction for any
/// shard count above them). `SDD_SHARD_RESIDENT` overrides with one budget.
fn spill_budgets() -> Vec<usize> {
    match std::env::var("SDD_SHARD_RESIDENT")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(cap) => vec![cap.max(1)],
        None => vec![1, 2],
    }
}

/// All shard configurations for a given shard count: fully resident plus
/// every spilling budget strictly below the shard count.
fn shard_configs(shards: usize) -> Vec<ShardConfig> {
    let mut cfgs = vec![ShardConfig::in_memory(shards)];
    for b in spill_budgets() {
        if b < shards {
            cfgs.push(ShardConfig::spilling(shards, b, std::env::temp_dir()));
        }
    }
    cfgs
}

fn sharded(table: &Table, cfg: &ShardConfig) -> Arc<ShardedTable> {
    Arc::new(ShardedTable::from_table(table, cfg).expect("shard build"))
}

/// Builds the same sharded table by **streaming** `table`'s rows through a
/// [`ShardBuilder`] in row order — the out-of-core ingest path. Codes are
/// interned in first-appearance order by both paths, so the result must be
/// bit-identical to [`ShardedTable::from_table`].
fn stream_built(table: &Table, cfg: &ShardConfig) -> Arc<ShardedTable> {
    let measures: Vec<String> = table.measure_names().map(str::to_owned).collect();
    let mut b = ShardBuilder::new(
        table.schema().clone(),
        measures.clone(),
        table.n_rows(),
        cfg,
    )
    .expect("stream builder");
    let mvals: Vec<&[f64]> = measures
        .iter()
        .map(|n| table.measure(n).expect("own measure"))
        .collect();
    for r in 0..table.n_rows() as u32 {
        let cats: Vec<&str> = (0..table.n_columns()).map(|c| table.value(r, c)).collect();
        let ms: Vec<f64> = mvals.iter().map(|v| v[r as usize]).collect();
        b.push_row(&cats, &ms).expect("stream push");
    }
    Arc::new(b.finish().expect("stream finish"))
}

/// Both construction paths for one config: every parity case below runs on
/// each, so "stream-built" joins "where bytes live" in the set of things
/// that can never change a result.
fn builds(table: &Table, cfg: &ShardConfig) -> [(Arc<ShardedTable>, &'static str); 2] {
    [
        (sharded(table, cfg), "from_table"),
        (stream_built(table, cfg), "stream"),
    ]
}

fn cfg_label(cfg: &ShardConfig) -> String {
    if cfg.resident > 0 {
        format!("{} shards, {} resident (spill)", cfg.shards, cfg.resident)
    } else {
        format!("{} shards, all resident", cfg.shards)
    }
}

/// A random categorical table: 2..=4 columns with cardinality ≤ 6.
fn random_table(rng: &mut StdRng) -> Table {
    let n_cols = rng.gen_range(2..5);
    let n_rows = rng.gen_range(10..120);
    let cards: Vec<u32> = (0..n_cols).map(|_| rng.gen_range(2..7)).collect();
    let names: Vec<String> = (0..n_cols).map(|c| format!("c{c}")).collect();
    let rows: Vec<Vec<String>> = (0..n_rows)
        .map(|_| {
            (0..n_cols)
                .map(|c| format!("v{}", rng.gen_range(0..cards[c])))
                .collect()
        })
        .collect();
    Table::from_rows(Schema::new(names).unwrap(), &rows).unwrap()
}

// ---------------------------------------------------------------------------
// Marginal search + BRS + drill-downs
// ---------------------------------------------------------------------------

#[test]
fn marginal_search_is_bit_identical_across_shard_layouts() {
    let _env = env_lock();
    let mut rng = StdRng::seed_from_u64(0x5AAD_0001);
    for trial in 0..12 {
        let table = random_table(&mut rng);
        let weight: &dyn WeightFn = if trial % 2 == 0 {
            &SizeWeight
        } else {
            &BitsWeight
        };
        let mw = rng.gen_range(1.5..6.0);

        // Optionally a weighted subset (a sample-shaped view).
        let use_subset = trial % 3 == 0;
        let (rows, weights): (Vec<u32>, Option<Vec<f64>>) = if use_subset {
            let rows: Vec<u32> = (0..table.n_rows() as u32)
                .filter(|_| rng.gen_range(0..4) != 0)
                .collect();
            let ws: Vec<f64> = rows.iter().map(|_| rng.gen_range(0.5..3.0)).collect();
            (rows, Some(ws))
        } else {
            ((0..table.n_rows() as u32).collect(), None)
        };
        if rows.is_empty() {
            continue;
        }
        let cov: Vec<f64> = (0..rows.len()).map(|_| rng.gen_range(0.0..2.5)).collect();

        let mono_view: TableView<'_> = match &weights {
            Some(w) => TableView::with_rows_and_weights(&table, rows.clone(), w.clone()),
            None if use_subset => TableView::with_rows(&table, rows.clone()),
            None => table.view(),
        };
        let mut opts = SearchOptions::new(mw);
        opts.parallel = false;
        let mono = find_best_marginal_rule(&mono_view, weight, &cov, &opts);

        for shards in SHARD_COUNTS {
            for cfg in shard_configs(shards) {
                for (st, how) in builds(&table, &cfg) {
                    let view = match &weights {
                        Some(w) => {
                            ShardedView::with_rows_and_weights(st.clone(), rows.clone(), w.clone())
                        }
                        None if use_subset => ShardedView::with_rows(st.clone(), rows.clone()),
                        None => ShardedView::all(st.clone()),
                    };
                    let mut scratch = SearchScratch::new();
                    let got =
                        find_best_marginal_rule_sharded(&view, weight, &cov, &opts, &mut scratch);
                    let label = format!("trial {trial}, {} ({how})", cfg_label(&cfg));
                    match (&mono, &got) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert_eq!(a.rule, b.rule, "{label}: winner differs");
                            assert_eq!(
                                a.marginal_value.to_bits(),
                                b.marginal_value.to_bits(),
                                "{label}: marginal bits differ"
                            );
                            assert_eq!(a.count.to_bits(), b.count.to_bits(), "{label}: count bits");
                            assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{label}: weight");
                            assert_eq!(a.stats, b.stats, "{label}: work counters");
                        }
                        (a, b) => panic!("{label}: disagreement {a:?} vs {b:?}"),
                    }
                    if cfg.resident > 0 && shards > cfg.resident {
                        assert!(st.loads() > 0, "{label}: spill path never exercised");
                    }
                }
            }
        }
    }
}

#[test]
fn brs_and_drilldowns_are_bit_identical_across_shard_layouts() {
    let _env = env_lock();
    let mut rng = StdRng::seed_from_u64(0x5AAD_0002);
    for trial in 0..8 {
        let table = random_table(&mut rng);
        let k = rng.gen_range(1..4);
        let mw = rng.gen_range(1.5..4.0);
        let brs = Brs::new(&SizeWeight)
            .with_max_weight(mw)
            .with_parallel(false);

        let mono_run = brs.run(&table.view(), k);
        // A drill-down base from a random row's first column.
        let base_row = rng.gen_range(0..table.n_rows()) as u32;
        let base = Rule::trivial(table.n_columns()).with_value(0, table.code(base_row, 0));
        let mono_drill = drill_down_with(&brs, &table.view(), &base, k);
        let star_col = table.n_columns() - 1;
        let mono_star = star_drill_down_with(&brs, &table.view(), &base, star_col, k);

        for shards in [1, 2, 3, 5, 8] {
            for cfg in shard_configs(shards) {
                for (st, how) in builds(&table, &cfg) {
                    let view = ShardedView::all(st.clone());
                    let label = format!("trial {trial}, {} ({how})", cfg_label(&cfg));

                    let got = brs.run_sharded(&view, k);
                    assert_eq!(
                        got.rules_only(),
                        mono_run.rules_only(),
                        "{label}: BRS rules"
                    );
                    assert_eq!(
                        got.total_score.to_bits(),
                        mono_run.total_score.to_bits(),
                        "{label}: score bits"
                    );
                    for (a, b) in got.rules.iter().zip(&mono_run.rules) {
                        assert_eq!(a.count.to_bits(), b.count.to_bits(), "{label}: counts");
                        assert_eq!(a.mcount.to_bits(), b.mcount.to_bits(), "{label}: mcounts");
                        assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{label}: weights");
                    }

                    let got_drill = drill_down_sharded(&brs, &view, &base, k);
                    assert_eq!(
                        got_drill.rules_only(),
                        mono_drill.rules_only(),
                        "{label}: drill-down rules"
                    );
                    assert_eq!(
                        got_drill.total_score.to_bits(),
                        mono_drill.total_score.to_bits(),
                        "{label}: drill-down score"
                    );

                    let got_star = star_drill_down_sharded(&brs, &view, &base, star_col, k);
                    assert_eq!(
                        got_star.rules_only(),
                        mono_star.rules_only(),
                        "{label}: star rules"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sample stores
// ---------------------------------------------------------------------------

fn handler_config(seed: u64) -> SampleHandlerConfig {
    SampleHandlerConfig {
        capacity: 3_000,
        min_sample_size: 50,
        seed,
        strategy: AllocationStrategy::Dp,
    }
}

/// Drives the same request sequence and snapshots the stored samples.
fn drive_handler(mut h: SampleHandler, rules: &[Rule]) -> (Vec<StoredSampleInfo>, String) {
    let mut served = String::new();
    for rule in rules {
        let s = h.get_sample(rule);
        // Record everything observable about the served view.
        served.push_str(&format!(
            "{:?} {} {} {:x}\n",
            s.mechanism,
            s.view.len(),
            s.scale.to_bits(),
            s.view.total_weight().to_bits(),
        ));
    }
    (h.stored_samples(), served)
}

#[test]
fn sample_stores_are_bit_identical_between_monolithic_and_sharded() {
    let _env = env_lock();
    let mut rng = StdRng::seed_from_u64(0x5AAD_0003);
    for trial in 0..6 {
        let table = Arc::new(random_table(&mut rng));
        let n_cols = table.n_columns();
        // Random request sequence: trivial rule + rules from real rows.
        let mut rules = vec![Rule::trivial(n_cols)];
        for _ in 0..6 {
            let row = rng.gen_range(0..table.n_rows()) as u32;
            let mut r = Rule::trivial(n_cols);
            for c in 0..n_cols {
                if rng.gen_range(0..2) == 0 {
                    r = r.with_value(c, table.code(row, c));
                }
            }
            rules.push(r);
        }
        let seed = rng.gen::<u64>();

        let (mono_store, mono_served) = drive_handler(
            SampleHandler::new(table.clone(), handler_config(seed)),
            &rules,
        );

        for shards in [1, 3, 8] {
            for cfg in shard_configs(shards) {
                for (st, how) in builds(&table, &cfg) {
                    let (got_store, got_served) = drive_handler(
                        SampleHandler::with_store(TableStore::Sharded(st), handler_config(seed)),
                        &rules,
                    );
                    let label = format!("trial {trial}, {} ({how})", cfg_label(&cfg));
                    assert_eq!(got_store, mono_store, "{label}: stored samples differ");
                    assert_eq!(got_served, mono_served, "{label}: served views differ");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Explorer sessions and server transcripts
// ---------------------------------------------------------------------------

fn explorer_config(seed: u64) -> ExplorerConfig {
    ExplorerConfig {
        k: 3,
        max_weight: Some(3.0),
        handler: SampleHandlerConfig {
            capacity: 20_000,
            min_sample_size: 1_000,
            seed,
            strategy: AllocationStrategy::Dp,
        },
        prefetch: PrefetchMode::Inline,
        confidence_z: 1.96,
        cache: None,
        table_id: None,
    }
}

/// Runs a fixed drill script and snapshots every observable: the rendered
/// display after each step, the final stored samples, and all counters.
fn drive_explorer(mut ex: Explorer) -> (String, Vec<StoredSampleInfo>, String) {
    let mut transcript = String::new();
    ex.expand(&[]).unwrap();
    transcript.push_str(&ex.render());
    ex.expand(&[0]).unwrap();
    transcript.push_str(&ex.render());
    let star_col = 2; // Region in the retail schema
    ex.expand_star(&[1], star_col).ok();
    transcript.push_str(&ex.render());
    ex.collapse(&[0]).unwrap();
    ex.try_refresh_exact_counts().unwrap();
    transcript.push_str(&ex.render());
    let stats = format!("{:?} {:?}", ex.stats, ex.handler_stats());
    (transcript, ex.handler().stored_samples(), stats)
}

#[test]
fn explorer_sessions_are_byte_identical_on_sharded_spilling_tables() {
    let _env = env_lock();
    let table = Arc::new(retail(42));
    let mono = drive_explorer(Explorer::new(
        table.clone(),
        Box::new(SizeWeight),
        explorer_config(7),
    ));

    for shards in [1, 4, 8] {
        for cfg in shard_configs(shards) {
            for (st, how) in builds(&table, &cfg) {
                let got = drive_explorer(Explorer::with_store(
                    TableStore::Sharded(st.clone()),
                    Box::new(SizeWeight),
                    explorer_config(7),
                ));
                let label = format!("{} ({how})", cfg_label(&cfg));
                assert_eq!(got.0, mono.0, "{label}: rendered transcripts differ");
                assert_eq!(got.1, mono.1, "{label}: stored samples differ");
                assert_eq!(got.2, mono.2, "{label}: counters differ");
                if cfg.resident > 0 && shards > cfg.resident {
                    assert!(
                        st.evictions() > 0,
                        "{label}: eviction never fired (budget untested)"
                    );
                }
            }
        }
    }
}

/// One scripted protocol session (raw request lines, in order).
fn session_script(name: &str) -> Vec<String> {
    let session = name.to_owned();
    let reqs = vec![
        Request::TableInfo,
        Request::Open {
            session: session.clone(),
            options: OpenOptions {
                k: Some(3),
                max_weight: Some(3.0),
                weight: Some("size".to_owned()),
                seed: Some(11),
                capacity: Some(20_000),
                min_ss: Some(1_000),
            },
        },
        Request::Expand {
            session: session.clone(),
            path: vec![],
        },
        Request::Expand {
            session: session.clone(),
            path: vec![0],
        },
        Request::Star {
            session: session.clone(),
            path: vec![1],
            column: "Region".to_owned(),
        },
        Request::Expand {
            session: session.clone(),
            path: vec![9, 9], // guaranteed error payload
        },
        Request::Rules {
            session: session.clone(),
        },
        Request::Render {
            session: session.clone(),
        },
        Request::Refresh {
            session: session.clone(),
        },
        Request::Stats { session },
    ];
    reqs.iter().map(|r| r.to_json().to_string()).collect()
}

#[test]
fn server_transcripts_are_byte_identical_on_sharded_spilling_tables() {
    let _env = env_lock();
    let table = Arc::new(retail(42));
    let script: Vec<String> = session_script("parity");
    let run = |engine: &Engine| -> Vec<String> {
        script
            .iter()
            .map(|line| engine.handle_line(line).0)
            .collect()
    };
    let mono = run(&Engine::new(table.clone(), EngineConfig::default()));
    assert!(
        mono.iter().any(|l| l.contains("\"op\":\"expand\"")),
        "script must exercise expansions"
    );

    for shards in SHARD_COUNTS {
        for cfg in shard_configs(shards) {
            for (st, how) in builds(&table, &cfg) {
                let got = run(&Engine::with_store(
                    TableStore::Sharded(st.clone()),
                    EngineConfig::default(),
                ));
                let label = format!("{} ({how})", cfg_label(&cfg));
                assert_eq!(got.len(), mono.len());
                for (step, (a, b)) in got.iter().zip(&mono).enumerate() {
                    assert_eq!(a, b, "{label}: transcript diverges at step {step}");
                }
                if cfg.resident > 0 && shards > cfg.resident {
                    assert!(st.loads() > 0, "{label}: spill never exercised");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Thread invariance of the sharded kernel
// ---------------------------------------------------------------------------

#[test]
fn sharded_search_is_thread_invariant() {
    // The sharded kernel's parallel modes (u64 count fan-out, threaded
    // accumulators) must not depend on the worker count. `SDD_THREADS` is
    // process-global and read concurrently by sibling tests, so every test
    // in this binary serializes on `env_lock`.
    let _env = env_lock();
    let table = retail(42);
    let cov: Vec<f64> = (0..table.n_rows()).map(|i| (i % 5) as f64 * 0.3).collect();
    let mut opts = SearchOptions::new(3.0);
    opts.parallel = true;
    opts.parallel_min_rows = 1;

    let run_with = |threads: &str, st: Arc<ShardedTable>| {
        std::env::set_var("SDD_THREADS", threads);
        let view = ShardedView::all(st);
        let mut scratch = SearchScratch::new();
        let r = find_best_marginal_rule_sharded(&view, &SizeWeight, &cov, &opts, &mut scratch)
            .expect("retail yields a rule");
        std::env::remove_var("SDD_THREADS");
        (r.rule, r.marginal_value.to_bits(), r.count.to_bits())
    };

    for cfg in [
        ShardConfig::in_memory(6),
        ShardConfig::spilling(6, 2, std::env::temp_dir()),
    ] {
        for (st, how) in builds(&table, &cfg) {
            let one = run_with("1", st.clone());
            let many = run_with("7", st);
            assert_eq!(
                one,
                many,
                "{} ({how}): thread count changed the result",
                cfg_label(&cfg)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming build ⇔ from_table byte equality
// ---------------------------------------------------------------------------

/// The structural half of the streaming contract: beyond producing equal
/// *results*, a stream-built table holds byte-identical segments — decoded
/// columns, spill files on disk, dictionaries, and measure slices — for
/// every shard count and budget. (The transcript half is covered by the
/// suites above, which run every case on both builds.)
#[test]
fn stream_built_tables_are_byte_identical_to_from_table() {
    let _env = env_lock();
    let mut rng = StdRng::seed_from_u64(0x5AAD_0005);
    let mut tables: Vec<Table> = (0..4).map(|_| random_table(&mut rng)).collect();
    tables.push(retail(42));
    for (ti, table) in tables.iter().enumerate() {
        for shards in SHARD_COUNTS {
            for cfg in shard_configs(shards) {
                let a = sharded(table, &cfg);
                let b = stream_built(table, &cfg);
                let label = format!("table {ti}, {}", cfg_label(&cfg));
                assert_eq!(a.spans(), b.spans(), "{label}: span layouts differ");
                for c in 0..table.n_columns() {
                    assert_eq!(
                        a.dictionary(c).iter().collect::<Vec<_>>(),
                        b.dictionary(c).iter().collect::<Vec<_>>(),
                        "{label}: dictionaries differ in column {c}"
                    );
                }
                for i in 0..a.n_shards() {
                    if let (Some(pa), Some(pb)) = (a.spill_path(i), b.spill_path(i)) {
                        assert_eq!(
                            std::fs::read(pa).expect("spill readable"),
                            std::fs::read(pb).expect("spill readable"),
                            "{label}: shard {i} spill files differ"
                        );
                    }
                    let (sa, sb) = (a.try_segment(i).unwrap(), b.try_segment(i).unwrap());
                    assert_eq!(sa.span(), sb.span(), "{label}: shard {i} span");
                    for c in 0..table.n_columns() {
                        assert_eq!(sa.col(c), sb.col(c), "{label}: shard {i} col {c}");
                    }
                    for name in table.measure_names() {
                        let (ma, mb) = (
                            sa.table().measure(name).expect("measure"),
                            sb.table().measure(name).expect("measure"),
                        );
                        let (ba, bb): (Vec<u64>, Vec<u64>) = (
                            ma.iter().map(|v| v.to_bits()).collect(),
                            mb.iter().map(|v| v.to_bits()).collect(),
                        );
                        assert_eq!(ba, bb, "{label}: shard {i} measure {name:?}");
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Coverage + scoring scan parity
// ---------------------------------------------------------------------------

/// `f64`s compared as bit patterns: parity here means *bitwise* equality,
/// not approximate equality.
fn bits(vals: &[f64]) -> Vec<u64> {
    vals.iter().map(|v| v.to_bits()).collect()
}

fn assert_score_bits_eq(got: &ListScore, want: &ListScore, label: &str) {
    assert_eq!(got.total.to_bits(), want.total.to_bits(), "{label}: total");
    assert_eq!(
        got.uncovered.to_bits(),
        want.uncovered.to_bits(),
        "{label}: uncovered"
    );
    assert_eq!(got.rules.len(), want.rules.len(), "{label}: rule count");
    for (g, w) in got.rules.iter().zip(&want.rules) {
        assert_eq!(g.rule, w.rule, "{label}: rule order");
        assert_eq!(g.weight.to_bits(), w.weight.to_bits(), "{label}: weight");
        assert_eq!(g.count.to_bits(), w.count.to_bits(), "{label}: count");
        assert_eq!(g.mcount.to_bits(), w.mcount.to_bits(), "{label}: mcount");
    }
}

/// Every public coverage/scoring scan — `covered_rows_sharded`,
/// `covered_positions_sharded`, `filter_to_rule_sharded`,
/// `count_rules_sharded`, `rule_count_sharded`, `score_list_sharded`, and
/// `sort_by_weight_desc_sharded` — is bit-identical to its monolithic twin
/// for every shard layout and both construction paths (lint rule X001
/// requires each `*_sharded` entry point exercised here by name).
#[test]
fn coverage_and_scoring_scans_are_bit_identical_across_shard_layouts() {
    let _env = env_lock();
    let mut rng = StdRng::seed_from_u64(0x5AAD_0007);
    for _trial in 0..6 {
        let table = random_table(&mut rng);
        // Real rules built off the table's own dictionaries: one size-1,
        // one size-2 (often sparse or empty), and a second size-1 for
        // scoring overlap.
        let val = |c: usize, k: usize| {
            let card = table.cardinality(c);
            let (_, v) = table.dictionary(c).iter().nth(k % card).expect("in range");
            v.to_string()
        };
        let (v00, v01, v10) = (val(0, 0), val(0, 1), val(1, 0));
        let rules = vec![
            Rule::from_pairs(&table, &[("c0", v00.as_str())]).expect("dict value"),
            Rule::from_pairs(&table, &[("c0", v01.as_str()), ("c1", v10.as_str())])
                .expect("dict value"),
            Rule::from_pairs(&table, &[("c1", v10.as_str())]).expect("dict value"),
        ];
        let base = &rules[0];

        let mono_view = table.view();
        let mono_rows = covered_rows(&table, base);
        let mono_pos = covered_positions(&mono_view, base);
        let mono_counts = count_rules(&table, &rules);
        let mono_one = rule_count(&mono_view, &rules[2]);
        let mono_sorted = sort_by_weight_desc(&mono_view, &BitsWeight, &rules);
        let mono_score = score_list(&mono_view, &BitsWeight, &mono_sorted);
        let mono_filtered = filter_to_rule(&mono_view, base);
        let mono_filtered_rows: Vec<u32> = mono_filtered.iter().map(|wr| wr.row).collect();

        for shards in SHARD_COUNTS {
            for cfg in shard_configs(shards) {
                for (st, how) in builds(&table, &cfg) {
                    let label = format!("{} [{how}]", cfg_label(&cfg));
                    let view = ShardedView::all(st.clone());

                    assert_eq!(
                        covered_rows_sharded(&st, base),
                        mono_rows,
                        "{label}: covered_rows"
                    );
                    assert_eq!(
                        covered_positions_sharded(&view, base),
                        mono_pos,
                        "{label}: covered_positions"
                    );
                    assert_eq!(
                        bits(&count_rules_sharded(&st, &rules)),
                        bits(&mono_counts),
                        "{label}: count_rules"
                    );
                    assert_eq!(
                        rule_count_sharded(&view, &rules[2]).to_bits(),
                        mono_one.to_bits(),
                        "{label}: rule_count"
                    );
                    assert_eq!(
                        sort_by_weight_desc_sharded(&st, &BitsWeight, &rules),
                        mono_sorted,
                        "{label}: sort_by_weight_desc"
                    );
                    assert_score_bits_eq(
                        &score_list_sharded(&view, &BitsWeight, &mono_sorted),
                        &mono_score,
                        &label,
                    );
                    let filtered = filter_to_rule_sharded(&view, base);
                    let filtered_rows: Vec<u32> =
                        (0..filtered.len()).map(|p| filtered.row_at(p)).collect();
                    assert_eq!(
                        filtered_rows, mono_filtered_rows,
                        "{label}: filter_to_rule row set"
                    );
                }
            }
        }
    }
}
