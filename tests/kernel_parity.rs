//! Parity suite for the columnar counting kernel (see `sdd_core::kernel`):
//! the columnar scalar path must be **bit-identical** to the historical
//! row-at-a-time implementation, the parallel path must be bit-identical to
//! scalar (task-per-column/group design — no float-merge reordering), and
//! k=1 greedy must match the exhaustive oracle on small instances.

use rand::{rngs::StdRng, Rng, SeedableRng};
use smart_drilldown::core::{
    exact_best_rule_set, find_best_marginal_rule, find_best_marginal_rule_rowwise, BestMarginal,
    BitsWeight, Rule, SearchOptions, SizeWeight, WeightFn,
};
use smart_drilldown::table::{Schema, Table, TableView};

/// A random categorical table: `n_cols` ≤ 4 columns with cardinality ≤ 5.
fn random_table(rng: &mut StdRng) -> Table {
    let n_cols = rng.gen_range(2..5);
    let n_rows = rng.gen_range(5..80);
    let cards: Vec<u32> = (0..n_cols).map(|_| rng.gen_range(2..6)).collect();
    let names: Vec<String> = (0..n_cols).map(|c| format!("c{c}")).collect();
    let rows: Vec<Vec<String>> = (0..n_rows)
        .map(|_| {
            (0..n_cols)
                .map(|c| format!("v{}", rng.gen_range(0..cards[c])))
                .collect()
        })
        .collect();
    Table::from_rows(Schema::new(names).unwrap(), &rows).unwrap()
}

fn assert_bitwise_equal(label: &str, a: &Option<BestMarginal>, b: &Option<BestMarginal>) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.rule, b.rule, "{label}: rules differ");
            assert_eq!(
                a.marginal_value.to_bits(),
                b.marginal_value.to_bits(),
                "{label}: marginal {} vs {}",
                a.marginal_value,
                b.marginal_value
            );
            assert_eq!(
                a.count.to_bits(),
                b.count.to_bits(),
                "{label}: counts differ"
            );
            assert_eq!(
                a.weight.to_bits(),
                b.weight.to_bits(),
                "{label}: weights differ"
            );
            assert_eq!(a.stats, b.stats, "{label}: work counters differ");
        }
        (a, b) => panic!("{label}: one path found a rule, the other did not: {a:?} vs {b:?}"),
    }
}

/// One randomized scenario: a table, a covered-weight vector, a weight
/// function, an `mw`, optionally a weighted subset view and a base rule.
fn run_scenario(rng: &mut StdRng, trial: usize) {
    let table = random_table(rng);

    // Optionally a weighted subset view (samples), else the full view.
    let use_subset = rng.gen_range(0..3) == 0;
    let view: TableView<'_> = if use_subset {
        let rows: Vec<u32> = (0..table.n_rows() as u32)
            .filter(|_| rng.gen_range(0..4) != 0)
            .collect();
        if rows.is_empty() {
            return;
        }
        let weights: Vec<f64> = rows.iter().map(|_| rng.gen_range(0.25..4.0)).collect();
        TableView::with_rows_and_weights(&table, rows, weights)
    } else {
        table.view()
    };

    let weight: &dyn WeightFn = if rng.gen_range(0..2) == 0 {
        &SizeWeight
    } else {
        &BitsWeight
    };
    let cov: Vec<f64> = (0..view.len()).map(|_| rng.gen_range(0.0..3.0)).collect();
    let mw = rng.gen_range(1.0..8.0);

    let mut opts = SearchOptions::new(mw);
    opts.pruning = rng.gen_range(0..4) != 0;

    // Occasionally search under a drill-down base (view filtered first, per
    // the SearchOptions contract).
    let based_view;
    let (view_ref, opts) = if rng.gen_range(0..4) == 0 && table.n_rows() > 0 {
        let col = rng.gen_range(0..table.n_columns());
        let row = rng.gen_range(0..table.n_rows()) as u32;
        let base = Rule::trivial(table.n_columns()).with_value(col, table.code(row, col));
        based_view = smart_drilldown::core::filter_to_rule(&view, &base);
        let mut o = opts.clone();
        o.base = Some(base);
        (&based_view, o)
    } else {
        based_view = view.clone();
        (&based_view, opts)
    };
    let cov: Vec<f64> = (0..view_ref.len())
        .map(|i| cov[i % cov.len().max(1)])
        .collect();

    let rowwise = find_best_marginal_rule_rowwise(view_ref, weight, &cov, &opts);

    let mut scalar_opts = opts.clone();
    scalar_opts.parallel = false;
    let scalar = find_best_marginal_rule(view_ref, weight, &cov, &scalar_opts);
    assert_bitwise_equal(
        &format!("trial {trial}: scalar vs rowwise"),
        &scalar,
        &rowwise,
    );

    let mut parallel_opts = opts.clone();
    parallel_opts.parallel = true;
    parallel_opts.parallel_min_rows = 1; // force the parallel path on tiny views
    let parallel = find_best_marginal_rule(view_ref, weight, &cov, &parallel_opts);
    assert_bitwise_equal(
        &format!("trial {trial}: parallel vs scalar"),
        &parallel,
        &scalar,
    );
}

#[test]
fn kernel_matches_rowwise_bitwise_on_randomized_instances() {
    // Force multi-worker execution even on single-core CI machines so the
    // parallel task scheduling is actually exercised.
    std::env::set_var("SDD_THREADS", "4");
    let mut rng = StdRng::seed_from_u64(0x5EED_2016);
    for trial in 0..150 {
        run_scenario(&mut rng, trial);
    }
}

#[test]
fn kernel_first_pick_matches_exact_oracle_on_small_instances() {
    let mut rng = StdRng::seed_from_u64(0xE84C7);
    for trial in 0..40 {
        let table = {
            let n_rows = rng.gen_range(4..16);
            let rows: Vec<[String; 3]> = (0..n_rows)
                .map(|_| {
                    [
                        format!("a{}", rng.gen_range(0..3)),
                        format!("b{}", rng.gen_range(0..3)),
                        format!("c{}", rng.gen_range(0..2)),
                    ]
                })
                .collect();
            Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &rows).unwrap()
        };
        let view = table.view();
        let cov = vec![0.0; view.len()];
        let mw = 3.0;

        // With no prior coverage, the best marginal rule's value is
        // Score({r}), so it must equal the exhaustive best 1-rule set.
        let best = find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(mw))
            .expect("non-empty table has a positive-marginal rule");
        let (_, exact_score) = exact_best_rule_set(&view, &SizeWeight, 1, 3);
        assert!(
            (best.marginal_value - exact_score).abs() < 1e-9,
            "trial {trial}: kernel {} vs exact {}",
            best.marginal_value,
            exact_score
        );
    }
}

#[test]
fn scratch_reuse_across_searches_is_stateless() {
    // Re-running searches through one scratch must give the same answers as
    // fresh scratches (Brs reuses one scratch across its k iterations).
    use smart_drilldown::core::{find_best_marginal_rule_with_scratch, SearchScratch};
    let mut rng = StdRng::seed_from_u64(42);
    let mut scratch = SearchScratch::new();
    for trial in 0..25 {
        let table = random_table(&mut rng);
        let view = table.view();
        let cov: Vec<f64> = (0..view.len()).map(|_| rng.gen_range(0.0..2.0)).collect();
        let opts = SearchOptions::new(rng.gen_range(1.0..6.0));
        let reused =
            find_best_marginal_rule_with_scratch(&view, &SizeWeight, &cov, &opts, &mut scratch);
        let fresh = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts);
        assert_bitwise_equal(
            &format!("trial {trial}: reused vs fresh scratch"),
            &reused,
            &fresh,
        );
    }
}
