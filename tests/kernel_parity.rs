//! Parity suite for the columnar counting kernel (see `sdd_core::kernel`):
//! the columnar scalar path must be **bit-identical** to the historical
//! row-at-a-time implementation, the parallel path must be bit-identical to
//! scalar (task-per-column/group design — no float-merge reordering), and
//! k=1 greedy must match the exhaustive oracle on small instances.

use rand::{rngs::StdRng, Rng, SeedableRng};
use smart_drilldown::core::{
    exact_best_rule_set, find_best_marginal_rule, find_best_marginal_rule_rowwise, BestMarginal,
    BitsWeight, RowSlice, Rule, SearchOptions, SizeWeight, WeightFn,
};
use smart_drilldown::table::{Schema, Table, TableView};

/// Serializes tests that set the process-global `SDD_THREADS` variable:
/// without it, concurrent test threads could flip the worker count under
/// each other mid-run, making the thread-pinned comparisons vacuous.
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .expect("env lock poisoned")
}

/// A random categorical table: `n_cols` ≤ 4 columns with cardinality ≤ 5.
fn random_table(rng: &mut StdRng) -> Table {
    let n_cols = rng.gen_range(2..5);
    let n_rows = rng.gen_range(5..80);
    let cards: Vec<u32> = (0..n_cols).map(|_| rng.gen_range(2..6)).collect();
    let names: Vec<String> = (0..n_cols).map(|c| format!("c{c}")).collect();
    let rows: Vec<Vec<String>> = (0..n_rows)
        .map(|_| {
            (0..n_cols)
                .map(|c| format!("v{}", rng.gen_range(0..cards[c])))
                .collect()
        })
        .collect();
    Table::from_rows(Schema::new(names).unwrap(), &rows).unwrap()
}

fn assert_bitwise_equal(label: &str, a: &Option<BestMarginal>, b: &Option<BestMarginal>) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.rule, b.rule, "{label}: rules differ");
            assert_eq!(
                a.marginal_value.to_bits(),
                b.marginal_value.to_bits(),
                "{label}: marginal {} vs {}",
                a.marginal_value,
                b.marginal_value
            );
            assert_eq!(
                a.count.to_bits(),
                b.count.to_bits(),
                "{label}: counts differ"
            );
            assert_eq!(
                a.weight.to_bits(),
                b.weight.to_bits(),
                "{label}: weights differ"
            );
            assert_eq!(a.stats, b.stats, "{label}: work counters differ");
        }
        (a, b) => panic!("{label}: one path found a rule, the other did not: {a:?} vs {b:?}"),
    }
}

/// One randomized scenario: a table, a covered-weight vector, a weight
/// function, an `mw`, optionally a weighted subset view and a base rule.
fn run_scenario(rng: &mut StdRng, trial: usize) {
    let table = random_table(rng);

    // Optionally a weighted subset view (samples), else the full view.
    let use_subset = rng.gen_range(0..3) == 0;
    let view: TableView<'_> = if use_subset {
        let rows: Vec<u32> = (0..table.n_rows() as u32)
            .filter(|_| rng.gen_range(0..4) != 0)
            .collect();
        if rows.is_empty() {
            return;
        }
        let weights: Vec<f64> = rows.iter().map(|_| rng.gen_range(0.25..4.0)).collect();
        TableView::with_rows_and_weights(&table, rows, weights)
    } else {
        table.view()
    };

    let weight: &dyn WeightFn = if rng.gen_range(0..2) == 0 {
        &SizeWeight
    } else {
        &BitsWeight
    };
    let cov: Vec<f64> = (0..view.len()).map(|_| rng.gen_range(0.0..3.0)).collect();
    let mw = rng.gen_range(1.0..8.0);

    let mut opts = SearchOptions::new(mw);
    opts.pruning = rng.gen_range(0..4) != 0;

    // Occasionally search under a drill-down base (view filtered first, per
    // the SearchOptions contract).
    let based_view;
    let (view_ref, opts) = if rng.gen_range(0..4) == 0 && table.n_rows() > 0 {
        let col = rng.gen_range(0..table.n_columns());
        let row = rng.gen_range(0..table.n_rows()) as u32;
        let base = Rule::trivial(table.n_columns()).with_value(col, table.code(row, col));
        based_view = smart_drilldown::core::filter_to_rule(&view, &base);
        let mut o = opts.clone();
        o.base = Some(base);
        (&based_view, o)
    } else {
        based_view = view.clone();
        (&based_view, opts)
    };
    let cov: Vec<f64> = (0..view_ref.len())
        .map(|i| cov[i % cov.len().max(1)])
        .collect();

    let rowwise = find_best_marginal_rule_rowwise(view_ref, weight, &cov, &opts);

    let mut scalar_opts = opts.clone();
    scalar_opts.parallel = false;
    let scalar = find_best_marginal_rule(view_ref, weight, &cov, &scalar_opts);
    assert_bitwise_equal(
        &format!("trial {trial}: scalar vs rowwise"),
        &scalar,
        &rowwise,
    );

    let mut parallel_opts = opts.clone();
    parallel_opts.parallel = true;
    parallel_opts.parallel_min_rows = 1; // force the parallel path on tiny views
    let parallel = find_best_marginal_rule(view_ref, weight, &cov, &parallel_opts);
    assert_bitwise_equal(
        &format!("trial {trial}: parallel vs scalar"),
        &parallel,
        &scalar,
    );
}

#[test]
fn kernel_matches_rowwise_bitwise_on_randomized_instances() {
    // Force multi-worker execution even on single-core CI machines so the
    // parallel task scheduling is actually exercised.
    let _env = env_lock();
    std::env::set_var("SDD_THREADS", "4");
    let mut rng = StdRng::seed_from_u64(0x5EED_2016);
    for trial in 0..150 {
        run_scenario(&mut rng, trial);
    }
}

/// Property: row-sliced execution is **bit-identical to scalar** — counts
/// *and* f64 weight sums — for every chunk cap in `1..=16`, on data whose
/// per-tuple weights and covered weights are dyadic rationals (multiples of
/// 1/4). On such data every partial sum is exactly representable, so the
/// chunk-ordered pairwise merge reproduces the scalar sweep bit for bit no
/// matter how the rows are sliced. (`SizeWeight` keeps rule weights
/// integral; arbitrary weights keep *determinism* — see the thread-
/// invariance test below — but may re-associate the last ulp.)
#[test]
fn row_sliced_is_bit_identical_to_scalar_for_any_chunk_count() {
    let _env = env_lock();
    std::env::set_var("SDD_THREADS", "4");
    let mut rng = StdRng::seed_from_u64(0x51_1CED);
    for trial in 0..40 {
        let table = random_table(&mut rng);
        // Dyadic per-tuple weights (k/4 for k in 1..16) on a shuffled subset.
        let use_weights = rng.gen_range(0..2) == 0;
        let rows: Vec<u32> = (0..table.n_rows() as u32)
            .filter(|_| rng.gen_range(0..5) != 0)
            .collect();
        if rows.is_empty() {
            continue;
        }
        let view = if use_weights {
            let weights: Vec<f64> = rows
                .iter()
                .map(|_| rng.gen_range(1..16) as f64 / 4.0)
                .collect();
            TableView::with_rows_and_weights(&table, rows, weights)
        } else {
            TableView::with_rows(&table, rows)
        };
        let cov: Vec<f64> = (0..view.len())
            .map(|_| rng.gen_range(0..12) as f64 / 4.0)
            .collect();
        let mw = rng.gen_range(1..8) as f64;

        let mut scalar_opts = SearchOptions::new(mw);
        scalar_opts.parallel = false;
        scalar_opts.pruning = rng.gen_range(0..4) != 0;
        let scalar = find_best_marginal_rule(&view, &SizeWeight, &cov, &scalar_opts);
        let rowwise = find_best_marginal_rule_rowwise(&view, &SizeWeight, &cov, &scalar_opts);
        assert_bitwise_equal(
            &format!("trial {trial}: scalar vs rowwise"),
            &scalar,
            &rowwise,
        );

        for max_chunks in 1..=16 {
            let mut sliced_opts = scalar_opts.clone();
            sliced_opts.parallel = true;
            sliced_opts.parallel_min_rows = 1;
            sliced_opts.row_slice = RowSlice::Force(max_chunks);
            let sliced = find_best_marginal_rule(&view, &SizeWeight, &cov, &sliced_opts);
            assert_bitwise_equal(
                &format!("trial {trial}: row-sliced (chunks={max_chunks}) vs scalar"),
                &sliced,
                &scalar,
            );
        }
    }
}

/// Property: for a fixed chunk cap, row-sliced results on **arbitrary**
/// float weights are bit-identical across thread counts — the chunk plan
/// and the pairwise merge order depend only on the view length and the
/// cap, never on which worker ran which chunk.
#[test]
fn row_sliced_is_thread_invariant_on_arbitrary_weights() {
    let _env = env_lock();
    let mut rng = StdRng::seed_from_u64(0x7AEAD);
    // (table, rows, weights, covered weights, mw)
    type Scenario = (Table, Vec<u32>, Vec<f64>, Vec<f64>, f64);
    let mut scenarios: Vec<Scenario> = Vec::new();
    for _ in 0..15 {
        let table = random_table(&mut rng);
        let rows: Vec<u32> = (0..table.n_rows() as u32).collect();
        let weights: Vec<f64> = rows.iter().map(|_| rng.gen_range(0.25..4.0)).collect();
        let cov: Vec<f64> = rows.iter().map(|_| rng.gen_range(0.0..3.0)).collect();
        let mw = rng.gen_range(1.0..8.0);
        scenarios.push((table, rows, weights, cov, mw));
    }
    let run_all = |threads: &str| -> Vec<Option<BestMarginal>> {
        std::env::set_var("SDD_THREADS", threads);
        scenarios
            .iter()
            .flat_map(|(table, rows, weights, cov, mw)| {
                let view = TableView::with_rows_and_weights(table, rows.clone(), weights.clone());
                [2usize, 3, 8].into_iter().map(move |max_chunks| {
                    let mut opts = SearchOptions::new(*mw);
                    opts.parallel = true;
                    opts.parallel_min_rows = 1;
                    opts.row_slice = RowSlice::Force(max_chunks);
                    find_best_marginal_rule(&view, &SizeWeight, cov, &opts)
                })
            })
            .collect()
    };
    let single = run_all("1");
    let multi = run_all("5");
    std::env::set_var("SDD_THREADS", "4"); // restore the suite-wide pin
    for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
        assert_bitwise_equal(&format!("scenario {i}: 1 thread vs 5 threads"), a, b);
    }
}

#[test]
fn kernel_first_pick_matches_exact_oracle_on_small_instances() {
    let mut rng = StdRng::seed_from_u64(0xE84C7);
    for trial in 0..40 {
        let table = {
            let n_rows = rng.gen_range(4..16);
            let rows: Vec<[String; 3]> = (0..n_rows)
                .map(|_| {
                    [
                        format!("a{}", rng.gen_range(0..3)),
                        format!("b{}", rng.gen_range(0..3)),
                        format!("c{}", rng.gen_range(0..2)),
                    ]
                })
                .collect();
            Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &rows).unwrap()
        };
        let view = table.view();
        let cov = vec![0.0; view.len()];
        let mw = 3.0;

        // With no prior coverage, the best marginal rule's value is
        // Score({r}), so it must equal the exhaustive best 1-rule set.
        let best = find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(mw))
            .expect("non-empty table has a positive-marginal rule");
        let (_, exact_score) = exact_best_rule_set(&view, &SizeWeight, 1, 3);
        assert!(
            (best.marginal_value - exact_score).abs() < 1e-9,
            "trial {trial}: kernel {} vs exact {}",
            best.marginal_value,
            exact_score
        );
    }
}

#[test]
fn scratch_reuse_across_searches_is_stateless() {
    // Re-running searches through one scratch must give the same answers as
    // fresh scratches (Brs reuses one scratch across its k iterations).
    use smart_drilldown::core::{find_best_marginal_rule_with_scratch, SearchScratch};
    let mut rng = StdRng::seed_from_u64(42);
    let mut scratch = SearchScratch::new();
    for trial in 0..25 {
        let table = random_table(&mut rng);
        let view = table.view();
        let cov: Vec<f64> = (0..view.len()).map(|_| rng.gen_range(0.0..2.0)).collect();
        let opts = SearchOptions::new(rng.gen_range(1.0..6.0));
        let reused =
            find_best_marginal_rule_with_scratch(&view, &SizeWeight, &cov, &opts, &mut scratch);
        let fresh = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts);
        assert_bitwise_equal(
            &format!("trial {trial}: reused vs fresh scratch"),
            &reused,
            &fresh,
        );
    }
}
