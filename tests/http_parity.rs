//! HTTP transcript-transparency harness: the same seeded command scripts
//! from the stress suite are driven over the HTTP front-end, the line-JSON
//! TCP path, and a direct in-process engine — and all three per-session
//! response transcripts must be **byte-identical**.
//!
//! This pins the tentpole claim of the HTTP layer: auth, admission
//! control, status mapping, and metrics recording gate *whether* a request
//! reaches the engine, never what it answers. The `POST /v1/line` body is
//! the exact line the TCP path would have written, and the HTTP status is
//! derived from (never added to) the response's leading `"ok"` field.

use smart_drilldown::datagen::retail;
use smart_drilldown::server::{
    Client, Engine, EngineConfig, HttpClient, OpenOptions, Request, Server, ServerConfig,
};
use std::sync::Arc;

const N_COMMANDS: usize = 12;

trait Transport {
    fn call_line(&mut self, line: &str) -> String;
}

struct Tcp(Client);

impl Transport for Tcp {
    fn call_line(&mut self, line: &str) -> String {
        self.0.call_line(line).expect("tcp request")
    }
}

struct Http(HttpClient);

impl Transport for Http {
    fn call_line(&mut self, line: &str) -> String {
        let (status, body) = self.0.call_line(None, line).expect("http request");
        // The status must mirror the body's own verdict — and nothing else.
        let expected = if body.starts_with("{\"ok\":true") {
            200
        } else {
            400
        };
        assert_eq!(status, expected, "status must mirror \"ok\" for {body}");
        body
    }
}

struct Direct<'e>(&'e Engine);

impl Transport for Direct<'_> {
    fn call_line(&mut self, line: &str) -> String {
        self.0.handle_line(line).0
    }
}

/// SplitMix64 — deterministic script randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

/// One scripted session: open → mixed commands (expands, stars — including
/// a bogus column for error parity — collapses, rules, stats) → close.
fn drive_session(transport: &mut dyn Transport, name: &str, seed: u64) -> Vec<String> {
    let mut transcript = Vec::new();
    let mut send = |transport: &mut dyn Transport, req: &Request| -> String {
        let line = transport.call_line(&req.to_json().to_string());
        transcript.push(line.clone());
        line
    };

    send(
        transport,
        &Request::Open {
            session: name.to_owned(),
            options: OpenOptions {
                k: Some(3),
                max_weight: Some(3.0),
                weight: Some("size".to_owned()),
                seed: Some(seed),
                capacity: Some(20_000),
                min_ss: Some(1_000),
            },
        },
    );
    let columns = ["Store", "Product", "Region", "NoSuchColumn"];
    let mut rng = Rng(seed);
    for _ in 0..N_COMMANDS {
        let session = name.to_owned();
        let req = match rng.next() % 8 {
            0..=3 => Request::Expand {
                session,
                path: vec![],
            },
            4 => Request::Star {
                session,
                path: vec![],
                column: (*rng.pick(&columns)).to_owned(),
            },
            5 => Request::Collapse {
                session,
                path: vec![],
            },
            6 => Request::Rules { session },
            _ => Request::Stats { session },
        };
        send(transport, &req);
    }
    send(
        transport,
        &Request::Close {
            session: name.to_owned(),
        },
    );
    transcript
}

#[test]
fn http_tcp_and_inprocess_transcripts_are_byte_identical() {
    let table = Arc::new(retail(42));

    // Fresh server per transport: parity must come from determinism, not
    // from shared state.
    let tcp_server = Server::bind(Arc::clone(&table), ServerConfig::default(), "127.0.0.1:0")
        .expect("bind tcp server")
        .spawn()
        .expect("spawn tcp server");
    let http_server = Server::bind(
        Arc::clone(&table),
        ServerConfig {
            http_addr: Some("127.0.0.1:0".to_owned()),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind http server")
    .spawn()
    .expect("spawn http server");
    let engine = Engine::new(Arc::clone(&table), EngineConfig::default());

    for seed in [3u64, 11, 29] {
        let name = format!("parity-{seed}");
        let tcp = drive_session(
            &mut Tcp(Client::connect(tcp_server.addr()).expect("tcp connect")),
            &name,
            seed,
        );
        let http = drive_session(
            &mut Http(
                HttpClient::connect(http_server.http_addr().expect("http addr"))
                    .expect("http connect"),
            ),
            &name,
            seed,
        );
        let direct = drive_session(&mut Direct(&engine), &name, seed);
        assert_eq!(tcp, http, "HTTP transcript diverged for seed {seed}");
        assert_eq!(
            tcp, direct,
            "in-process transcript diverged for seed {seed}"
        );
    }
}

#[test]
fn auth_and_quotas_never_touch_response_bytes() {
    // The same script through an authenticated, tightly-quota'd tenant
    // must produce the same bytes as the open server above — auth gates
    // access, never content.
    let table = Arc::new(retail(42));
    let tenants =
        smart_drilldown::server::TenantRegistry::from_token_file("tok-p alpha 8 2\n").unwrap();
    let mut config = ServerConfig {
        http_addr: Some("127.0.0.1:0".to_owned()),
        ..ServerConfig::default()
    };
    config.engine.tenants = Arc::new(tenants);
    let server = Server::bind(Arc::clone(&table), config, "127.0.0.1:0")
        .expect("bind")
        .spawn()
        .expect("spawn");
    let engine = Engine::new(Arc::clone(&table), EngineConfig::default());

    let mut client = HttpClient::connect(server.http_addr().unwrap()).unwrap();
    struct AuthedHttp(HttpClient);
    impl Transport for AuthedHttp {
        fn call_line(&mut self, line: &str) -> String {
            self.0.call_line(Some("tok-p"), line).expect("request").1
        }
    }
    let via_tenant = drive_session(
        &mut AuthedHttp(HttpClient::connect(server.http_addr().unwrap()).unwrap()),
        "parity-a",
        17,
    );
    let direct = drive_session(&mut Direct(&engine), "parity-a", 17);
    assert_eq!(via_tenant, direct);
    // And the unauthenticated view of the same server is a clean 401.
    let (status, _) = client.call_line(None, "{\"op\":\"table_info\"}").unwrap();
    assert_eq!(status, 401);
}
