//! Cache-transparency parity harness.
//!
//! The shared cross-session result cache must be **invisible** in every
//! response byte: for any store layout (monolithic, sharded, spilling),
//! any request schedule, and any client concurrency, transcripts with the
//! cache on equal transcripts with the cache off — the cache may only
//! change *when* a result is computed, never *what* it is.
//!
//! Three layers of assertion:
//!
//! 1. **Per-cell sweep** over shard counts × residency budgets (the
//!    `tests/shard_parity.rs` grid): replaying the same session twice on a
//!    cache-enabled engine must produce byte-identical transcripts to a
//!    cache-disabled engine, *and* actually hit the cache on the replay.
//! 2. **Runtime bit-parity**: these tests run with debug assertions, so
//!    every cache hit inside the explorer is re-verified bit-for-bit
//!    against a fresh computation (`debug_assert!` in
//!    `Explorer::search`) — a poisoned or stale entry aborts the test.
//! 3. **Concurrent clients**: same-seed sessions hammering one server
//!    concurrently (maximal cross-session hit pressure) must match a
//!    single-threaded cache-off replay byte for byte.

use smart_drilldown::datagen::retail;
use smart_drilldown::explorer::{ExplorerConfig, PrefetchMode};
use smart_drilldown::server::{
    Client, Engine, EngineConfig, OpenOptions, Request, Server, ServerConfig,
};
use smart_drilldown::table::{ShardConfig, ShardedTable, TableStore};
use std::ops::RangeInclusive;
use std::sync::Arc;

/// Shard counts swept (including the 1-shard degenerate layout), mirroring
/// `tests/shard_parity.rs`.
const SHARD_COUNTS: RangeInclusive<usize> = 1..=8;

/// Residency budgets for the spilling configs (`None` = fully in memory).
fn residency_budgets() -> Vec<Option<usize>> {
    vec![None, Some(1), Some(2)]
}

fn shard_config(shards: usize, resident: Option<usize>) -> ShardConfig {
    match resident {
        None => ShardConfig::in_memory(shards),
        Some(m) => ShardConfig::spilling(shards, m.min(shards), std::env::temp_dir()),
    }
}

fn engine_for(store: TableStore, cache_bytes: usize, prefetch: PrefetchMode) -> Engine {
    Engine::with_store(
        store,
        EngineConfig {
            session: ExplorerConfig {
                prefetch,
                ..ExplorerConfig::default()
            },
            cache_bytes,
            ..EngineConfig::default()
        },
    )
}

fn open_opts(seed: u64) -> OpenOptions {
    OpenOptions {
        k: Some(3),
        max_weight: Some(3.0),
        weight: Some("size".to_owned()),
        seed: Some(seed),
        capacity: Some(20_000),
        min_ss: Some(1_000),
    }
}

/// One analyst visit: open, drill a fixed path mix (rule and star
/// expansions, a rollup, an error payload), snapshot everything, close.
fn script(session: &str, seed: u64) -> Vec<Request> {
    let s = || session.to_owned();
    vec![
        Request::Open {
            session: s(),
            options: open_opts(seed),
        },
        Request::Expand {
            session: s(),
            path: vec![],
        },
        Request::Expand {
            session: s(),
            path: vec![0],
        },
        Request::Star {
            session: s(),
            path: vec![],
            column: "Region".to_owned(),
        },
        Request::Collapse {
            session: s(),
            path: vec![0],
        },
        Request::Expand {
            session: s(),
            path: vec![1],
        },
        Request::Expand {
            session: s(),
            path: vec![9, 9],
        },
        Request::Rules { session: s() },
        Request::Refresh { session: s() },
        Request::Stats { session: s() },
        Request::Close { session: s() },
    ]
}

/// Replays `script` through the engine directly and returns the raw
/// response lines.
fn replay(engine: &Engine, session: &str, seed: u64) -> Vec<String> {
    script(session, seed)
        .iter()
        .map(|req| engine.handle_line(&req.to_json().to_string()).0)
        .collect()
}

#[test]
fn cached_visits_match_uncached_across_all_store_layouts() {
    let table = Arc::new(retail(42));
    for shards in SHARD_COUNTS {
        for resident in residency_budgets() {
            let build_store = || -> TableStore {
                if shards == 1 && resident.is_none() {
                    // The monolithic cell of the grid.
                    TableStore::Whole(table.clone())
                } else {
                    TableStore::Sharded(Arc::new(
                        ShardedTable::from_table(&table, &shard_config(shards, resident))
                            .expect("shard build"),
                    ))
                }
            };
            let cell = format!("shards={shards} resident={resident:?}");

            // Reference: cache disabled by config, one visit.
            let uncached = engine_for(build_store(), 0, PrefetchMode::Inline);
            assert!(
                uncached.cache_counters().is_none(),
                "{cell}: cache_bytes=0 must disable the cache"
            );
            let reference = replay(&uncached, "visit", 7);

            // Cache enabled: the same visit twice. The second replay
            // re-derives every key and must be served from the cache —
            // with debug assertions re-verifying each hit bit-for-bit.
            let cached = engine_for(build_store(), 64 << 20, PrefetchMode::Inline);
            let first = replay(&cached, "visit", 7);
            let second = replay(&cached, "visit", 7);
            assert_eq!(first, reference, "{cell}: first cached visit diverged");
            assert_eq!(second, reference, "{cell}: cache replay diverged");

            // Under the SDD_NO_CACHE kill switch the "cached" engine is
            // legitimately uncached — the parity assertions above still
            // ran, which is exactly what the kill-switch CI leg checks.
            match cached.cache_counters() {
                Some(counters) => {
                    assert!(
                        counters.hits > 0,
                        "{cell}: replay never hit the cache ({counters:?})"
                    );
                    assert!(
                        counters.inserts > 0,
                        "{cell}: first visit never populated the cache ({counters:?})"
                    );
                }
                None => assert!(
                    !smart_drilldown::server::cache_enabled(),
                    "{cell}: cache_bytes > 0 yet no cache and no kill switch"
                ),
            }
        }
    }
}

#[test]
fn different_seeds_miss_instead_of_colliding() {
    // Two sessions with different sampling seeds draw different sample
    // views; their keys must differ (content digest), so the cache serves
    // neither session the other's rules.
    let table = Arc::new(retail(42));
    let cached = engine_for(
        TableStore::Whole(table.clone()),
        64 << 20,
        PrefetchMode::Inline,
    );
    let a = replay(&cached, "visit", 7);
    let b = replay(&cached, "visit", 1234);
    let uncached = engine_for(TableStore::Whole(table), 0, PrefetchMode::Inline);
    assert_eq!(a, replay(&uncached, "visit", 7));
    assert_eq!(b, replay(&uncached, "visit", 1234));
    // Sanity: the two seeds genuinely produce different estimates
    // somewhere, or this test proves nothing.
    assert_ne!(a, b, "seeds 7 and 1234 produced identical transcripts");
}

#[test]
fn concurrent_same_seed_clients_share_the_cache_transparently() {
    const N_CLIENTS: usize = 4;
    let table = Arc::new(retail(42));

    // Server with the cache on and deferred prefetch — the production
    // configuration, under maximal cross-session hit pressure (every
    // client replays the same seed and script).
    let server = Server::bind(
        table.clone(),
        ServerConfig {
            engine: EngineConfig::default(),
            threads: N_CLIENTS + 2,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = server.addr();

    let handles: Vec<_> = (0..N_CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                script(&format!("clone-{i}"), 7)
                    .iter()
                    .map(|req| {
                        client
                            .call_line(&req.to_json().to_string())
                            .expect("tcp request")
                    })
                    .collect::<Vec<String>>()
            })
        })
        .collect();
    let concurrent: Vec<Vec<String>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    let counters = server.engine().cache_counters();
    server.shutdown();

    // Reference: cache off, inline prefetch, single-threaded.
    let reference = engine_for(TableStore::Whole(table), 0, PrefetchMode::Inline);
    for (i, transcript) in concurrent.iter().enumerate() {
        let expected = replay(&reference, &format!("clone-{i}"), 7);
        assert_eq!(
            transcript, &expected,
            "client {i}: cached concurrent transcript differs from \
             uncached single-threaded replay"
        );
    }
    match counters {
        Some(counters) => assert!(
            counters.hits > 0,
            "same-seed clients never shared a result ({counters:?})"
        ),
        None => assert!(
            !smart_drilldown::server::cache_enabled(),
            "default config must enable the cache unless SDD_NO_CACHE is set"
        ),
    }
}
